"""Unit tests for the Calypso runtime: eager scheduling, exactly-once commit."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.calypso.faults import DeterministicFaults, FaultInjector, SlowNodeInjector
from repro.calypso.routine import Routine
from repro.calypso.runtime import CalypsoRuntime
from repro.calypso.shared import SharedMemory
from repro.calypso.step import ParallelStep
from repro.errors import CalypsoError, ConcurrentWriteError, ConfigurationError
from repro.sim.rng import RandomStreams


def sum_memory(n_chunks=4, chunk=100):
    data = list(range(n_chunks * chunk))
    return SharedMemory(data=data, **{f"p{i}": 0 for i in range(n_chunks)})


def sum_body(view, width, number):
    data = view["data"]
    lo = number * len(data) // width
    hi = (number + 1) * len(data) // width
    view[f"p{number}"] = sum(data[lo:hi])


def sum_step(copies=4):
    return ParallelStep((Routine(sum_body, copies=copies, name="sum"),), name="reduce")


def expected_total(n_chunks=4, chunk=100):
    return sum(range(n_chunks * chunk))


class TestBasicExecution:
    def test_single_worker(self):
        mem = sum_memory()
        report = CalypsoRuntime(workers=1).execute_step(sum_step(), mem)
        assert report.tasks == 4
        assert report.executions == 4
        assert report.faults_masked == 0
        assert sum(mem[f"p{i}"] for i in range(4)) == expected_total()

    def test_many_workers(self):
        mem = sum_memory()
        report = CalypsoRuntime(workers=8).execute_step(sum_step(), mem)
        assert report.tasks == 4
        assert sum(mem[f"p{i}"] for i in range(4)) == expected_total()

    def test_more_tasks_than_workers(self):
        mem = sum_memory(n_chunks=4)
        CalypsoRuntime(workers=2).execute_step(sum_step(4), mem)
        assert sum(mem[f"p{i}"] for i in range(4)) == expected_total()

    def test_width_and_number_arguments(self):
        seen = []
        mem = SharedMemory(out=0)

        def probe(view, width, number):
            seen.append((width, number))

        CalypsoRuntime(workers=1).execute_step(
            ParallelStep((Routine(probe, copies=3, name="p"),)), mem
        )
        assert sorted(seen) == [(3, 0), (3, 1), (3, 2)]

    def test_multiple_routines_in_one_step(self):
        mem = SharedMemory(a=0, b=0)
        step = ParallelStep(
            (
                Routine(lambda v, w, n: v.__setitem__("a", 1), name="ra"),
                Routine(lambda v, w, n: v.__setitem__("b", 2), name="rb"),
            )
        )
        CalypsoRuntime(workers=2).execute_step(step, mem)
        assert mem["a"] == 1 and mem["b"] == 2

    def test_updates_invisible_until_commit(self):
        """A task reads the step-begin snapshot, not other tasks' writes."""
        mem = SharedMemory(x=0, y=0)

        def writer(view, width, number):
            view["x"] = 1

        def reader(view, width, number):
            view["y"] = view["x"]  # must see the snapshot value 0

        step = ParallelStep(
            (Routine(writer, name="w"), Routine(reader, name="r"))
        )
        CalypsoRuntime(workers=2).execute_step(step, mem)
        assert mem["x"] == 1
        assert mem["y"] == 0

    def test_execute_steps_sequence(self):
        mem = SharedMemory(x=0)
        inc = ParallelStep(
            (Routine(lambda v, w, n: v.__setitem__("x", v["x"] + 1), name="i"),)
        )
        reports = CalypsoRuntime(workers=2).execute_steps([inc, inc, inc], mem)
        assert mem["x"] == 3
        assert len(reports) == 3


class TestCrew:
    def test_conflict_detected(self):
        mem = SharedMemory(shared_slot=0, data=list(range(8)))

        def clash(view, width, number):
            view["shared_slot"] = number

        step = ParallelStep((Routine(clash, copies=2, name="c"),))
        with pytest.raises(ConcurrentWriteError):
            CalypsoRuntime(workers=2).execute_step(step, mem)

    def test_conflict_leaves_memory_unchanged(self):
        mem = SharedMemory(shared_slot=42, data=[])

        def clash(view, width, number):
            view["shared_slot"] = number

        step = ParallelStep((Routine(clash, copies=2, name="c"),))
        with pytest.raises(ConcurrentWriteError):
            CalypsoRuntime(workers=1).execute_step(step, mem)
        assert mem["shared_slot"] == 42


class TestFaultMasking:
    def test_deterministic_faults_masked(self):
        mem = sum_memory()
        inj = DeterministicFaults({("sum", 0): 2, ("sum", 3): 1})
        report = CalypsoRuntime(workers=2, fault_injector=inj).execute_step(
            sum_step(), mem
        )
        assert report.faults_masked == 3
        assert report.executions == report.tasks + 3 + report.duplicates
        assert sum(mem[f"p{i}"] for i in range(4)) == expected_total()

    def test_probabilistic_faults_masked(self):
        mem = sum_memory()
        inj = FaultInjector(0.6, RandomStreams(9), max_faults_per_task=5)
        report = CalypsoRuntime(workers=4, fault_injector=inj).execute_step(
            sum_step(), mem
        )
        assert sum(mem[f"p{i}"] for i in range(4)) == expected_total()
        assert report.faults_masked > 0

    def test_program_errors_not_masked(self):
        mem = SharedMemory(x=0)

        def boom(view, width, number):
            raise ValueError("program bug")

        step = ParallelStep((Routine(boom, name="b"),))
        with pytest.raises(ValueError, match="program bug"):
            CalypsoRuntime(workers=2).execute_step(step, mem)

    def test_execution_cap_enforced(self):
        mem = SharedMemory(x=0)
        inj = DeterministicFaults({("b", 0): 10_000})
        runtime = CalypsoRuntime(
            workers=1, fault_injector=inj, max_executions_per_task=5
        )
        step = ParallelStep((Routine(lambda v, w, n: None, name="b"),))
        with pytest.raises(CalypsoError, match="exceeded"):
            runtime.execute_step(step, mem)


class TestEagerDuplication:
    def test_exactly_once_commit_under_duplication(self):
        """Even with aggressive duplication the committed state is correct."""
        mem = sum_memory(n_chunks=8)
        runtime = CalypsoRuntime(workers=8, eager_duplication=True)
        report = runtime.execute_step(sum_step(copies=8), mem)
        assert report.tasks == 8
        assert sum(mem[f"p{i}"] for i in range(8)) == expected_total(8)

    def test_duplicates_recorded_when_they_happen(self):
        # Force duplication: many workers, one slow task via fault retries.
        mem = sum_memory(n_chunks=2)
        inj = DeterministicFaults({("sum", 0): 3})
        runtime = CalypsoRuntime(workers=4, fault_injector=inj)
        report = runtime.execute_step(sum_step(copies=2), mem)
        assert report.executions >= report.tasks
        assert sum(mem[f"p{i}"] for i in range(2)) == expected_total(2)


class TestStragglerMasking:
    def test_all_workers_slow_still_correct(self):
        """Uniform slowness changes wall time, never results."""
        mem = sum_memory()
        inj = SlowNodeInjector({"calypso-0", "calypso-1"}, delay=0.005)
        report = CalypsoRuntime(workers=2, fault_injector=inj).execute_step(
            sum_step(), mem
        )
        assert report.faults_masked == 0  # slowness is not a fault
        assert inj.delays_injected == report.executions
        assert sum(mem[f"p{i}"] for i in range(4)) == expected_total()

    def test_slow_node_masked_by_eager_duplication(self):
        """A straggling worker never corrupts the committed state: fast
        workers eagerly duplicate its in-flight tasks and the first
        completed execution of each logical task wins exactly once."""
        mem = sum_memory(n_chunks=8)
        inj = SlowNodeInjector({"calypso-0"}, delay=0.02)
        runtime = CalypsoRuntime(
            workers=4, fault_injector=inj, eager_duplication=True
        )
        report = runtime.execute_step(sum_step(copies=8), mem)
        assert report.tasks == 8
        assert report.executions == report.tasks + report.duplicates
        assert sum(mem[f"p{i}"] for i in range(8)) == expected_total(8)

    def test_slow_node_without_duplication_still_correct(self):
        mem = sum_memory(n_chunks=4)
        inj = SlowNodeInjector({"calypso-0"}, delay=0.005)
        runtime = CalypsoRuntime(
            workers=2, fault_injector=inj, eager_duplication=False
        )
        report = runtime.execute_step(sum_step(copies=4), mem)
        assert report.duplicates == 0
        assert sum(mem[f"p{i}"] for i in range(4)) == expected_total(4)


class TestValidation:
    def test_worker_count(self):
        with pytest.raises(ConfigurationError):
            CalypsoRuntime(workers=0)

    def test_execution_cap(self):
        with pytest.raises(ConfigurationError):
            CalypsoRuntime(max_executions_per_task=0)


@given(
    copies=st.integers(1, 6),
    workers=st.integers(1, 6),
    fault_prob=st.sampled_from([0.0, 0.3, 0.6]),
    seed=st.integers(0, 10),
)
def test_commit_invariant_under_randomized_execution(copies, workers, fault_prob, seed):
    """Property: any worker count + fault rate commits the identical result."""
    mem = sum_memory(n_chunks=copies, chunk=17)
    injector = (
        FaultInjector(fault_prob, RandomStreams(seed), max_faults_per_task=4)
        if fault_prob
        else None
    )
    runtime = CalypsoRuntime(workers=workers, fault_injector=injector)
    report = runtime.execute_step(sum_step(copies=copies), mem)
    assert report.tasks == copies
    total = sum(mem[f"p{i}"] for i in range(copies))
    assert total == sum(range(copies * 17))
