"""Unit tests for fault injectors."""

import threading

import pytest

from repro.calypso.faults import (
    DeterministicFaults,
    FaultInjector,
    SlowNodeInjector,
    TransientFault,
)
from repro.errors import ConfigurationError
from repro.sim.rng import RandomStreams


class TestFaultInjector:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FaultInjector(1.0, RandomStreams(1))
        with pytest.raises(ConfigurationError):
            FaultInjector(-0.1, RandomStreams(1))
        with pytest.raises(ConfigurationError):
            FaultInjector(0.5, RandomStreams(1), max_faults_per_task=-1)

    def test_zero_probability_never_faults(self):
        inj = FaultInjector(0.0, RandomStreams(1))
        for i in range(100):
            inj.before_execution(("t", i))
        assert inj.injected == 0

    def test_cap_guarantees_progress(self):
        inj = FaultInjector(0.99, RandomStreams(1), max_faults_per_task=3)
        faults = 0
        for _ in range(50):
            try:
                inj.before_execution(("t", 0))
            except TransientFault:
                faults += 1
        assert faults <= 3
        assert inj.injected == faults

    def test_reproducible(self):
        def run(seed):
            inj = FaultInjector(0.5, RandomStreams(seed), max_faults_per_task=100)
            outcomes = []
            for i in range(20):
                try:
                    inj.before_execution(("t", i))
                    outcomes.append(False)
                except TransientFault:
                    outcomes.append(True)
            return outcomes

        assert run(5) == run(5)
        assert run(5) != run(6)


class TestDeterministicFaults:
    def test_scripted_failures(self):
        inj = DeterministicFaults({("t", 0): 2})
        with pytest.raises(TransientFault):
            inj.before_execution(("t", 0))
        with pytest.raises(TransientFault):
            inj.before_execution(("t", 0))
        inj.before_execution(("t", 0))  # third attempt succeeds
        assert inj.injected == 2

    def test_unscripted_tasks_never_fail(self):
        inj = DeterministicFaults({("t", 0): 1})
        inj.before_execution(("other", 5))

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            DeterministicFaults({("t", 0): -1})


class TestSlowNodeInjector:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SlowNodeInjector({"calypso-0"}, delay=0.0)
        with pytest.raises(ConfigurationError):
            SlowNodeInjector({"calypso-0"}, delay=-0.1)

    def test_only_named_workers_stall(self):
        inj = SlowNodeInjector({"slow-thread"}, delay=0.001)
        inj.before_execution(("t", 0))  # current thread is not slow
        assert inj.delays_injected == 0

        def run():
            inj.before_execution(("t", 1))

        worker = threading.Thread(target=run, name="slow-thread")
        worker.start()
        worker.join()
        assert inj.delays_injected == 1

    def test_never_raises(self):
        inj = SlowNodeInjector({threading.current_thread().name}, delay=0.001)
        for i in range(3):
            inj.before_execution(("t", i))  # stalls, never faults
        assert inj.delays_injected == 3
