"""Unit tests for routines and parallel steps."""

import pytest

from repro.calypso.routine import Routine
from repro.calypso.step import ParallelStep, StepReport
from repro.errors import CalypsoError


def noop(view, width, number):
    return None


class TestRoutine:
    def test_basic(self):
        r = Routine(noop, copies=3, name="work")
        assert r.copies == 3

    def test_body_must_be_callable(self):
        with pytest.raises(CalypsoError):
            Routine("nope")  # type: ignore[arg-type]

    def test_copies_positive_int(self):
        with pytest.raises(CalypsoError):
            Routine(noop, copies=0)
        with pytest.raises(CalypsoError):
            Routine(noop, copies=True)


class TestParallelStep:
    def test_logical_tasks(self):
        step = ParallelStep(
            (Routine(noop, copies=2, name="a"), Routine(noop, copies=3, name="b"))
        )
        tasks = step.logical_tasks()
        assert len(tasks) == 5
        assert step.total_tasks == 5
        assert tasks[0].key == ("a", 0)
        assert tasks[0].width == 2
        assert tasks[4].key == ("b", 2)
        assert tasks[4].width == 3

    def test_auto_names(self):
        step = ParallelStep((Routine(noop), Routine(noop)))
        names = [r.name for r in step.routines]
        assert names == ["routine0", "routine1"]

    def test_duplicate_names_rejected(self):
        with pytest.raises(CalypsoError):
            ParallelStep((Routine(noop, name="x"), Routine(noop, name="x")))

    def test_empty_step_rejected(self):
        with pytest.raises(CalypsoError):
            ParallelStep(())


class TestStepReport:
    def test_overhead_ratio(self):
        rep = StepReport("s", tasks=4, executions=6, faults_masked=1, duplicates=1)
        assert rep.overhead_ratio == 1.5

    def test_zero_tasks(self):
        rep = StepReport("s", tasks=0, executions=0, faults_masked=0, duplicates=0)
        assert rep.overhead_ratio == 0.0
