"""Unit tests for the end-to-end application manager."""

import pytest

from repro.calypso.manager import ApplicationManager
from repro.calypso.routine import Routine
from repro.calypso.runtime import CalypsoRuntime
from repro.calypso.shared import SharedMemory
from repro.calypso.step import ParallelStep
from repro.core.arbitrator import QoSArbitrator
from repro.core.resources import ProcessorTimeRequest
from repro.errors import CalypsoError
from repro.lang.constructs import TaskConfig, TaskConstruct
from repro.lang.params import ParameterSet
from repro.lang.program import TunableProgram


def make_program():
    """Two-step program: a parallel doubling step, then a sequential sum."""

    def double_body(memory, env):
        scale = int(env["scale"])

        def routine(view, width, number):
            data = view["data"]
            lo = number * len(data) // width
            hi = (number + 1) * len(data) // width
            view[f"part_{number}"] = [v * scale for v in data[lo:hi]]

        return ParallelStep((Routine(routine, copies=2, name="dbl"),), name="double")

    def sum_body(memory, env):
        total = sum(memory["part_0"]) + sum(memory["part_1"])
        memory["total"] = total
        return None

    scale_task = TaskConstruct(
        "double",
        deadline=10.0,
        parameter_list=("scale",),
        configs=(
            TaskConfig((2,), ProcessorTimeRequest(2, 2.0), quality=1.0),
            TaskConfig((1,), ProcessorTimeRequest(1, 2.0), quality=0.5),
        ),
        body=double_body,
    )
    sum_task = TaskConstruct(
        "sum",
        deadline=20.0,
        parameter_list=(),
        configs=(TaskConfig((), ProcessorTimeRequest(1, 1.0)),),
        body=sum_body,
    )
    return TunableProgram("pipeline", ParameterSet(scale=None), (scale_task, sum_task))


def make_memory():
    return SharedMemory(data=[1, 2, 3, 4], part_0=[], part_1=[], total=0)


class TestRun:
    def test_executes_granted_path(self):
        mgr = ApplicationManager(make_program(), CalypsoRuntime(workers=2), make_memory())
        run = mgr.run(QoSArbitrator(4), release=0.0)
        assert run is not None
        assert run.params["scale"] == 2  # earliest finish picks either; check result
        assert mgr.memory["total"] == sum([1, 2, 3, 4]) * run.params["scale"]
        assert [r.step_name for r in run.reports] == ["double"]

    def test_rejection_returns_none(self):
        arb = QoSArbitrator(4)
        arb.schedule.profile.reserve(0.0, 19.5, 4)
        mgr = ApplicationManager(make_program(), CalypsoRuntime(workers=2), make_memory())
        assert mgr.run(arb, release=0.0) is None

    def test_degraded_path_under_load(self):
        arb = QoSArbitrator(2)
        # One processor busy until t=9: the 2-wide config can't meet d=10
        # at full width... (2-wide needs 2 free; free from 9.0, ends 11 > 10)
        arb.schedule.profile.reserve(0.0, 9.0, 1)
        mgr = ApplicationManager(make_program(), CalypsoRuntime(workers=2), make_memory())
        run = mgr.run(arb, release=0.0)
        assert run is not None
        assert run.params["scale"] == 1
        assert mgr.memory["total"] == 10

    def test_submit_only_does_not_execute(self):
        mgr = ApplicationManager(make_program(), CalypsoRuntime(workers=2), make_memory())
        contract = mgr.submit_only(QoSArbitrator(4), release=0.0)
        assert contract is not None
        assert mgr.memory["total"] == 0

    def test_fault_stats_aggregate(self):
        from repro.calypso.faults import DeterministicFaults

        inj = DeterministicFaults({("dbl", 0): 2})
        mgr = ApplicationManager(
            make_program(),
            CalypsoRuntime(workers=2, fault_injector=inj),
            make_memory(),
        )
        run = mgr.run(QoSArbitrator(4), release=0.0)
        assert run.faults_masked == 2
        assert run.total_executions >= 2

    def test_bad_body_return_type(self):
        def bad_body(memory, env):
            return 42

        task = TaskConstruct(
            "bad",
            deadline=10.0,
            parameter_list=(),
            configs=(TaskConfig((), ProcessorTimeRequest(1, 1.0)),),
            body=bad_body,
        )
        prog = TunableProgram("bad", ParameterSet(), (task,))
        mgr = ApplicationManager(prog, CalypsoRuntime(), SharedMemory(x=0))
        with pytest.raises(CalypsoError):
            mgr.run(QoSArbitrator(4), release=0.0)
