"""Unit tests for CREW shared memory."""

import pytest

from repro.calypso.shared import SharedMemory, TaskView, merge_buffers
from repro.errors import CalypsoError, ConcurrentWriteError


class TestSharedMemory:
    def test_declare_and_read(self):
        mem = SharedMemory(x=1)
        mem.declare("y", 2)
        assert mem["x"] == 1
        assert mem["y"] == 2
        assert "x" in mem and "z" not in mem

    def test_redeclare_rejected(self):
        mem = SharedMemory(x=1)
        with pytest.raises(CalypsoError):
            mem.declare("x", 2)

    def test_undeclared_read_rejected(self):
        with pytest.raises(CalypsoError):
            SharedMemory()["ghost"]

    def test_sequential_write(self):
        mem = SharedMemory(x=1)
        mem["x"] = 5
        assert mem["x"] == 5

    def test_snapshot_is_detached(self):
        mem = SharedMemory(x=1)
        snap = mem.snapshot()
        mem["x"] = 2
        assert snap["x"] == 1

    def test_apply(self):
        mem = SharedMemory(x=1, y=2)
        mem.apply({"x": 10})
        assert mem["x"] == 10
        assert mem["y"] == 2

    def test_apply_undeclared_rejected(self):
        with pytest.raises(CalypsoError):
            SharedMemory(x=1).apply({"ghost": 1})

    def test_iteration(self):
        assert sorted(SharedMemory(a=1, b=2)) == ["a", "b"]


class TestTaskView:
    def test_reads_snapshot(self):
        view = TaskView({"x": 1})
        assert view["x"] == 1

    def test_own_writes_visible_to_self(self):
        view = TaskView({"x": 1})
        view["x"] = 99
        assert view["x"] == 99
        assert view.writes == {"x": 99}

    def test_writes_isolated_between_views(self):
        snap = {"x": 1}
        a = TaskView(snap)
        b = TaskView(snap)
        a["x"] = 5
        assert b["x"] == 1

    def test_undeclared_read(self):
        with pytest.raises(CalypsoError):
            TaskView({})["ghost"]

    def test_undeclared_write(self):
        with pytest.raises(CalypsoError):
            TaskView({})["ghost"] = 1

    def test_contains(self):
        view = TaskView({"x": 1})
        assert "x" in view
        assert "y" not in view


class TestMergeBuffers:
    def test_disjoint_writes_merge(self):
        merged = merge_buffers({("r", 0): {"a": 1}, ("r", 1): {"b": 2}})
        assert merged == {"a": 1, "b": 2}

    def test_conflicting_writes_raise(self):
        with pytest.raises(ConcurrentWriteError):
            merge_buffers({("r", 0): {"a": 1}, ("r", 1): {"a": 1}})

    def test_conflict_regardless_of_value(self):
        """Exclusive write is about ownership, not value coincidence."""
        with pytest.raises(ConcurrentWriteError):
            merge_buffers({("r", 0): {"a": 7}, ("s", 0): {"a": 7}})

    def test_single_writer_many_keys(self):
        merged = merge_buffers({("r", 0): {"a": 1, "b": 2}})
        assert merged == {"a": 1, "b": 2}

    def test_empty(self):
        assert merge_buffers({}) == {}
