"""Unit tests for step 3 and the full junction pipeline."""

import numpy as np
import pytest

from repro.apps.junction.detect import (
    detect_junctions,
    harris_response,
    junction_points,
)
from repro.apps.junction.image import synthetic_image
from repro.apps.junction.quality import match_quality
from repro.errors import ConfigurationError


class TestHarris:
    def test_shape(self):
        img = synthetic_image(size=64, n_junctions=2, seed=1)
        resp = harris_response(img.pixels)
        assert resp.shape == img.pixels.shape

    def test_flat_image_zero_response(self):
        flat = np.full((32, 32), 0.7)
        assert np.allclose(harris_response(flat), 0.0)

    def test_corner_scores_higher_than_edge(self):
        canvas = np.ones((64, 64))
        canvas[32:, :] = 0.0          # horizontal edge
        canvas2 = np.ones((64, 64))
        canvas2[32:, 32:] = 0.0       # corner at (32, 32)
        edge_resp = harris_response(canvas)[32, 32]
        corner_resp = harris_response(canvas2)[32, 32]
        assert corner_resp > edge_resp

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            harris_response(np.zeros(5))
        with pytest.raises(ConfigurationError):
            harris_response(np.zeros((4, 4)), window=2)


class TestOrientationRuns:
    def canvas(self):
        return np.ones((41, 41))

    def smooth(self, canvas):
        from scipy import ndimage

        return ndimage.gaussian_filter(canvas, 1.2)

    def test_straight_line_one_orientation(self):
        from repro.apps.junction.detect import _orientation_runs

        c = self.canvas()
        c[20, 5:36] = 0.0
        assert _orientation_runs(self.smooth(c), 20, 20) == 1

    def test_line_endpoint_one_orientation(self):
        from repro.apps.junction.detect import _orientation_runs

        c = self.canvas()
        c[20, 20:36] = 0.0
        assert _orientation_runs(self.smooth(c), 20, 20) == 1

    def test_cross_multiple_orientations(self):
        from repro.apps.junction.detect import _orientation_runs

        c = self.canvas()
        c[20, 5:36] = 0.0
        c[5:36, 20] = 0.0
        assert _orientation_runs(self.smooth(c), 20, 20) >= 2

    def test_flat_region_zero(self):
        from repro.apps.junction.detect import _orientation_runs

        assert _orientation_runs(np.full((41, 41), 0.5), 20, 20) == 0


class TestOrientationRunsBatched:
    """The vectorized batch path must match the scalar path exactly."""

    def test_matches_scalar_everywhere_including_borders(self):
        from scipy import ndimage

        from repro.apps.junction.detect import (
            _orientation_runs,
            _orientation_runs_batched,
        )

        rng = np.random.default_rng(11)
        smoothed = ndimage.gaussian_filter(rng.random((48, 53)), 1.2)
        rr, cc = np.meshgrid(np.arange(48), np.arange(53), indexing="ij")
        candidates = np.stack([rr.ravel(), cc.ravel()], axis=1)
        batched = _orientation_runs_batched(smoothed, candidates)
        scalar = np.array(
            [_orientation_runs(smoothed, int(r), int(c)) for r, c in candidates]
        )
        np.testing.assert_array_equal(batched, scalar)

    def test_empty_candidates(self):
        from repro.apps.junction.detect import _orientation_runs_batched

        runs = _orientation_runs_batched(
            np.zeros((32, 32)), np.empty((0, 2), dtype=np.int64)
        )
        assert runs.shape == (0,)

    def test_flat_image_all_zero(self):
        from repro.apps.junction.detect import _orientation_runs_batched

        candidates = np.array([[10, 10], [2, 2], [20, 30]])
        runs = _orientation_runs_batched(np.full((32, 32), 0.5), candidates)
        np.testing.assert_array_equal(runs, 0)

    def test_junction_points_matches_per_point_loop(self):
        from scipy import ndimage

        from repro.apps.junction.detect import (
            _local_maxima,
            _orientation_runs,
        )

        img = synthetic_image(size=128, n_junctions=6, seed=9)
        mask = np.ones((128, 128), bool)
        points = junction_points(img.pixels, mask)
        # Reference: the pre-vectorization per-candidate loop.
        smoothed = ndimage.gaussian_filter(img.pixels.astype(np.float64), 1.2)
        response = harris_response(smoothed, window=5)
        candidates = _local_maxima(
            response, mask, 0.1 * float(response.max()), 9
        )
        keep = [
            p
            for p in candidates
            if _orientation_runs(smoothed, int(p[0]), int(p[1])) >= 2
        ]
        reference = (
            np.asarray(keep, dtype=np.int64)
            if keep
            else np.empty((0, 2), dtype=np.int64)
        )
        np.testing.assert_array_equal(points, reference)


class TestJunctionPoints:
    def test_empty_mask(self):
        img = synthetic_image(size=64, n_junctions=2, seed=1)
        pts = junction_points(img.pixels, np.zeros((64, 64), bool))
        assert pts.shape == (0, 2)

    def test_full_mask_finds_planted(self):
        img = synthetic_image(size=128, n_junctions=5, seed=3)
        pts = junction_points(img.pixels, np.ones((128, 128), bool))
        q = match_quality(pts, img.junctions, tolerance=6.0)
        assert q.recall >= 0.6
        assert q.precision >= 0.6  # the orientation filter earns this

    def test_orientation_filter_improves_precision(self):
        img = synthetic_image(size=128, n_junctions=5, seed=4)
        mask = np.ones((128, 128), bool)
        filtered = junction_points(img.pixels, mask)
        unfiltered = junction_points(img.pixels, mask, min_orientations=1)
        q_f = match_quality(filtered, img.junctions, tolerance=6.0)
        q_u = match_quality(unfiltered, img.junctions, tolerance=6.0)
        assert q_f.precision > q_u.precision
        assert filtered.shape[0] <= unfiltered.shape[0]


class TestDetectJunctions:
    def test_returns_consistent_result(self):
        img = synthetic_image(size=128, n_junctions=5, seed=4)
        result = detect_junctions(img.pixels, granularity=16, search_distance=5.0)
        assert result.granularity == 16
        assert result.search_distance == 5.0
        assert result.work.step1 == result.sample.sampled_count
        assert result.work.step2 == result.sample.interesting_count
        assert result.work.total == (
            result.work.step1 + result.work.step2 + result.work.step3
        )

    def test_detections_inside_regions(self):
        img = synthetic_image(size=128, n_junctions=5, seed=5)
        result = detect_junctions(img.pixels, granularity=16, search_distance=5.0)
        mask = np.zeros(img.pixels.shape, bool)
        for region in result.regions:
            mask |= region.pixel_mask(img.pixels.shape)
        for r, c in result.points:
            assert mask[r, c]

    def test_coarse_smaller_step1(self):
        img = synthetic_image(size=128, n_junctions=5, seed=6)
        fine = detect_junctions(img.pixels, 16, 5.0)
        coarse = detect_junctions(img.pixels, 64, 20.0)
        assert coarse.work.step1 < fine.work.step1

    def test_larger_search_distance_larger_step3(self):
        img = synthetic_image(size=128, n_junctions=5, seed=7)
        small = detect_junctions(img.pixels, 64, 8.0)
        large = detect_junctions(img.pixels, 64, 20.0)
        assert large.work.step3 >= small.work.step3

    def test_reasonable_quality(self):
        img = synthetic_image(size=128, n_junctions=6, seed=8)
        result = detect_junctions(img.pixels, 16, 5.0)
        q = match_quality(result.points, img.junctions, tolerance=6.0)
        assert q.recall >= 0.5

    def test_blank_image(self):
        flat = np.full((64, 64), 0.5, dtype=np.float32)
        result = detect_junctions(flat, 16, 5.0)
        assert result.count == 0
        assert result.work.step3 == 0

    def test_validation(self):
        img = synthetic_image(size=64, n_junctions=2, seed=1)
        with pytest.raises(ConfigurationError):
            detect_junctions(img.pixels, 16, 5.0, relative_threshold=1.5)
