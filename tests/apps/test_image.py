"""Unit tests for the synthetic junction image generator."""

import numpy as np
import pytest

from repro.apps.junction.image import synthetic_image
from repro.errors import ConfigurationError


class TestSyntheticImage:
    def test_shape_and_range(self):
        img = synthetic_image(size=96, n_junctions=4, seed=1)
        assert img.pixels.shape == (96, 96)
        assert img.pixels.dtype == np.float32
        assert img.pixels.min() >= 0.0
        assert img.pixels.max() <= 1.0

    def test_ground_truth_count(self):
        img = synthetic_image(size=128, n_junctions=5, seed=2)
        assert img.junctions.shape == (5, 2)

    def test_junctions_inside_margin(self):
        img = synthetic_image(size=128, n_junctions=5, seed=3, margin=12)
        assert (img.junctions >= 12).all()
        assert (img.junctions < 128 - 12).all()

    def test_junction_pixels_are_dark(self):
        img = synthetic_image(size=128, n_junctions=5, seed=4, noise=0.0)
        for r, c in img.junctions:
            assert img.pixels[r, c] < 0.2

    def test_separation(self):
        img = synthetic_image(size=160, n_junctions=6, seed=5, margin=12)
        pts = img.junctions.astype(float)
        for i in range(len(pts)):
            for j in range(i + 1, len(pts)):
                assert np.hypot(*(pts[i] - pts[j])) >= 24.0

    def test_reproducible(self):
        a = synthetic_image(size=64, n_junctions=2, seed=7)
        b = synthetic_image(size=64, n_junctions=2, seed=7)
        assert (a.pixels == b.pixels).all()
        assert (a.junctions == b.junctions).all()

    def test_seeds_differ(self):
        a = synthetic_image(size=64, n_junctions=2, seed=7)
        b = synthetic_image(size=64, n_junctions=2, seed=8)
        assert not (a.pixels == b.pixels).all()

    def test_noise_free_background_is_white(self):
        img = synthetic_image(size=64, n_junctions=1, seed=1, noise=0.0)
        # Corner pixel is almost surely background.
        assert img.pixels[0, 0] == 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            synthetic_image(size=20, margin=12)
        with pytest.raises(ConfigurationError):
            synthetic_image(n_junctions=0)
        with pytest.raises(ConfigurationError):
            synthetic_image(min_arms=1)
        with pytest.raises(ConfigurationError):
            synthetic_image(size=64, n_junctions=50, margin=12)
