"""Unit tests for the adaptive-refinement tunable application."""

import numpy as np
import pytest

from repro.apps.refine import (
    DEFAULT_REFINEMENT_CONFIGS,
    RefinementConfig,
    _grids,
    jacobi_sweeps,
    prepare_refinement_memory,
    profile_refinement,
    refinement_program,
    solution_error,
)
from repro.calypso.manager import ApplicationManager
from repro.calypso.runtime import CalypsoRuntime
from repro.core.arbitrator import ArbitrationObjective, QoSArbitrator
from repro.errors import ConfigurationError
from repro.lang.preprocess import enumerate_paths


@pytest.fixture(scope="module")
def profiles():
    return tuple(profile_refinement(c) for c in DEFAULT_REFINEMENT_CONFIGS)


class TestSolver:
    def test_sweeps_reduce_error(self):
        rhs, exact, h = _grids(16)
        u0 = np.zeros_like(rhs)
        few = jacobi_sweeps(u0, rhs, h, 10)
        many = jacobi_sweeps(u0, rhs, h, 500)
        assert solution_error(many, exact) < solution_error(few, exact)

    def test_zero_sweeps_identity(self):
        rhs, _exact, h = _grids(16)
        u = np.random.default_rng(0).random(rhs.shape)
        out = jacobi_sweeps(u, rhs, h, 0)
        assert np.array_equal(out, u)
        assert out is not u  # defensive copy

    def test_boundary_preserved(self):
        rhs, _exact, h = _grids(16)
        u = jacobi_sweeps(np.zeros_like(rhs), rhs, h, 50)
        assert np.allclose(u[0, :], 0.0) and np.allclose(u[-1, :], 0.0)
        assert np.allclose(u[:, 0], 0.0) and np.allclose(u[:, -1], 0.0)

    def test_convergence_to_analytic(self):
        rhs, exact, h = _grids(32)
        u = jacobi_sweeps(np.zeros_like(rhs), rhs, h, 1500)
        assert solution_error(u, exact) < 0.01

    def test_negative_sweeps_rejected(self):
        rhs, _exact, h = _grids(16)
        with pytest.raises(ConfigurationError):
            jacobi_sweeps(np.zeros_like(rhs), rhs, h, -1)


class TestConfigAndProfile:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            RefinementConfig(resolution=4, blocks=1, sweeps_per_block=1)
        with pytest.raises(ConfigurationError):
            RefinementConfig(resolution=16, blocks=0, sweeps_per_block=1)
        with pytest.raises(ConfigurationError):
            RefinementConfig(resolution=16, blocks=1, sweeps_per_block=0)

    def test_profile_tradeoff(self, profiles):
        fine, coarse = profiles
        # Fine: much more work, much less error.
        assert fine.total_duration > 5 * coarse.total_duration
        assert fine.error < coarse.error
        assert fine.quality > coarse.quality

    def test_quality_in_unit_interval(self, profiles):
        for p in profiles:
            assert 0 < p.quality <= 1


class TestProgram:
    def test_paths_unrolled(self, profiles):
        chains = enumerate_paths(refinement_program(profiles))
        assert len(chains) == 2
        fine_chain = next(c for c in chains if c.params["resolution"] == 64)
        coarse_chain = next(c for c in chains if c.params["resolution"] == 32)
        # setup + blocks + evaluate
        assert len(fine_chain) == 1 + 12 + 1
        assert len(coarse_chain) == 1 + 6 + 1

    def test_block_deadlines_increase(self, profiles):
        chains = enumerate_paths(refinement_program(profiles))
        for chain in chains:
            sweep_deadlines = [t.deadline for t in chain if t.name == "sweep"]
            assert sweep_deadlines == sorted(sweep_deadlines)
            assert len(set(sweep_deadlines)) == len(sweep_deadlines)

    def test_profile_order_enforced(self, profiles):
        with pytest.raises(ConfigurationError):
            refinement_program(tuple(reversed(profiles)))

    def test_quality_objective_selects_fine(self, profiles):
        program = refinement_program(profiles)
        manager = ApplicationManager(
            program, CalypsoRuntime(workers=2), prepare_refinement_memory()
        )
        arb = QoSArbitrator(8, objective=ArbitrationObjective.MAX_QUALITY)
        run = manager.run(arb, release=0.0)
        assert run.params["resolution"] == 64
        assert manager.memory["error"] < 0.001

    def test_earliest_finish_selects_coarse(self, profiles):
        program = refinement_program(profiles)
        manager = ApplicationManager(
            program, CalypsoRuntime(workers=2), prepare_refinement_memory()
        )
        run = manager.run(QoSArbitrator(8), release=0.0)
        assert run.params["resolution"] == 32
        assert manager.memory["error"] < 0.01

    def test_executed_error_matches_profile(self, profiles):
        program = refinement_program(profiles)
        manager = ApplicationManager(
            program, CalypsoRuntime(workers=2), prepare_refinement_memory()
        )
        run = manager.run(QoSArbitrator(8), release=0.0)
        granted = next(
            p for p in profiles if p.config.resolution == run.params["resolution"]
        )
        assert manager.memory["error"] == pytest.approx(granted.error)
