"""Unit tests for detection-quality matching."""

import numpy as np
import pytest

from repro.apps.junction.quality import match_quality
from repro.errors import ConfigurationError


def arr(*pairs):
    return np.asarray(pairs, dtype=np.float64)


class TestMatchQuality:
    def test_perfect_match(self):
        gt = arr((10, 10), (50, 50))
        q = match_quality(gt, gt, tolerance=3.0)
        assert q.precision == 1.0
        assert q.recall == 1.0
        assert q.f1 == 1.0

    def test_offset_within_tolerance(self):
        q = match_quality(arr((12, 10)), arr((10, 10)), tolerance=3.0)
        assert q.true_positives == 1

    def test_offset_beyond_tolerance(self):
        q = match_quality(arr((20, 20)), arr((10, 10)), tolerance=3.0)
        assert q.true_positives == 0
        assert q.precision == 0.0 and q.recall == 0.0 and q.f1 == 0.0

    def test_one_to_one_matching(self):
        # Two detections near one ground truth: only one counts.
        q = match_quality(arr((10, 10), (11, 10)), arr((10, 10)), tolerance=3.0)
        assert q.true_positives == 1
        assert q.precision == 0.5
        assert q.recall == 1.0

    def test_greedy_prefers_closest(self):
        # det0 is closest to gt0; det1 must then claim gt1.
        q = match_quality(
            arr((10, 10), (10, 14)), arr((10, 11), (10, 15)), tolerance=5.0
        )
        assert q.true_positives == 2

    def test_empty_detections(self):
        q = match_quality(np.empty((0, 2)), arr((1, 1)))
        assert q.recall == 0.0
        assert q.precision == 0.0

    def test_empty_ground_truth(self):
        q = match_quality(arr((1, 1)), np.empty((0, 2)))
        assert q.precision == 0.0

    def test_f1_harmonic(self):
        q = match_quality(arr((10, 10), (90, 90)), arr((10, 10), (50, 50)),
                          tolerance=3.0)
        assert q.precision == 0.5 and q.recall == 0.5
        assert q.f1 == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            match_quality(arr((1, 1)), arr((1, 1)), tolerance=0.0)
