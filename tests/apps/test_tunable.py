"""Unit tests for the tunable junction program and its profiling."""

import pytest

from repro.apps.junction.image import synthetic_image
from repro.apps.junction.tunable import (
    DEFAULT_CONFIGS,
    JunctionConfig,
    junction_program,
    prepare_memory,
    profile_configuration,
)
from repro.calypso.manager import ApplicationManager
from repro.calypso.runtime import CalypsoRuntime
from repro.core.arbitrator import QoSArbitrator
from repro.errors import ConfigurationError
from repro.lang.preprocess import enumerate_paths


@pytest.fixture(scope="module")
def image():
    return synthetic_image(size=128, n_junctions=6, seed=11)


@pytest.fixture(scope="module")
def profiles(image):
    return [profile_configuration(image, c) for c in DEFAULT_CONFIGS]


class TestConfig:
    def test_defaults_ordered_fine_coarse(self):
        fine, coarse = DEFAULT_CONFIGS
        assert fine.granularity < coarse.granularity
        assert fine.search_distance < coarse.search_distance

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            JunctionConfig(0, 5.0)
        with pytest.raises(ConfigurationError):
            JunctionConfig(16, 0.0)


class TestProfiling:
    def test_profile_fields(self, image, profiles):
        for prof in profiles:
            assert len(prof.steps) == 3
            for step in prof.steps:
                assert step.duration > 0
                assert step.request.processors == step.processors
            assert 0.0 <= prof.f1 <= 1.0
            assert prof.total_area > 0

    def test_fig2_tradeoff(self, profiles):
        fine, coarse = profiles
        # Coarse sampling: much cheaper step 1, costlier step 3.
        assert coarse.steps[0].work < fine.steps[0].work / 2
        assert coarse.steps[2].work > fine.steps[2].work

    def test_duration_floor(self, image):
        prof = profile_configuration(image, JunctionConfig(64, 20.0))
        assert all(s.duration >= 0.25 for s in prof.steps)


class TestProgram:
    def test_two_paths(self, profiles):
        prog = junction_program(profiles)
        chains = enumerate_paths(prog)
        assert len(chains) == 2
        grans = {c.params["sampleGranularity"] for c in chains}
        assert grans == {16, 64}
        for c in chains:
            assert len(c) == 3
            assert c.params["c"] in (1, 2)

    def test_deadline_monotone(self, profiles):
        for chain in enumerate_paths(junction_program(profiles)):
            deadlines = [t.deadline for t in chain]
            assert deadlines == sorted(deadlines)

    def test_profile_order_enforced(self, profiles):
        with pytest.raises(ConfigurationError):
            junction_program(list(reversed(profiles)))
        with pytest.raises(ConfigurationError):
            junction_program(profiles[:1])

    def test_end_to_end_execution(self, image, profiles):
        prog = junction_program(profiles)
        mgr = ApplicationManager(prog, CalypsoRuntime(workers=2), prepare_memory(image))
        run = mgr.run(QoSArbitrator(8), release=0.0)
        assert run is not None
        junctions = mgr.memory["junctions"]
        assert junctions.shape[0] > 0
        assert run.params["sampleGranularity"] in (16, 64)

    def test_execution_matches_direct_pipeline(self, image, profiles):
        """The Calypso path computes the same detections as detect_junctions."""
        from repro.apps.junction.detect import detect_junctions
        import numpy as np

        prog = junction_program(profiles)
        mgr = ApplicationManager(prog, CalypsoRuntime(workers=4), prepare_memory(image))
        run = mgr.run(QoSArbitrator(8), release=0.0)
        direct = detect_junctions(
            image.pixels,
            granularity=int(run.params["sampleGranularity"]),
            search_distance=float(run.params["searchDistance"]),
        )
        assert np.array_equal(
            np.sort(mgr.memory["junctions"], axis=0),
            np.sort(direct.points, axis=0),
        )
