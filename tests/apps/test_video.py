"""Unit tests for the soft real-time video pipeline app."""

import pytest

from repro.apps.video import FrameSpec, frame_job, run_pipeline
from repro.errors import WorkloadError


class TestFrameJob:
    def test_two_paths(self):
        job = frame_job(FrameSpec(), period=2.0, release=4.0)
        assert job.tunable
        assert {c.label for c in job} == {"full", "degraded"}
        assert job.release == 4.0

    def test_deadline_budget(self):
        spec = FrameSpec(deadline_factor=1.5)
        job = frame_job(spec, period=2.0, release=0.0)
        for chain in job:
            assert chain.final_deadline == pytest.approx(3.0)

    def test_quality_ordering(self):
        job = frame_job(FrameSpec(degraded_quality=0.7), period=2.0, release=0.0)
        by_label = {c.label: c for c in job}
        assert by_label["full"].tasks[-1].quality == 1.0
        assert by_label["degraded"].tasks[-1].quality == 0.7

    def test_spec_validation(self):
        with pytest.raises(WorkloadError):
            FrameSpec(degraded_quality=0.0)
        with pytest.raises(WorkloadError):
            FrameSpec(deadline_factor=0.0)


class TestPipeline:
    def test_large_machine_full_quality(self):
        report = run_pipeline(processors=16, n_frames=50, period=2.0)
        assert report.on_time_rate == 1.0
        assert report.full_quality_frames == 50
        assert report.mean_quality == pytest.approx(1.0)

    def test_earliest_finish_degrades_everything(self):
        report = run_pipeline(
            processors=16, n_frames=50, period=2.0, quality_aware=False
        )
        assert report.degraded_frames == 50
        assert report.mean_quality == pytest.approx(0.7)

    def test_small_machine_degrades_or_drops(self):
        report = run_pipeline(processors=6, n_frames=50, period=2.0)
        assert report.full_quality_frames < 50
        assert report.frames == 50
        assert (
            report.on_time
            == report.full_quality_frames + report.degraded_frames
        )

    def test_counts_partition(self):
        report = run_pipeline(processors=10, n_frames=40, period=2.0, jitter=0.5)
        assert report.on_time + report.dropped == 40

    def test_jitter_reproducible(self):
        a = run_pipeline(processors=10, n_frames=40, period=2.0, jitter=0.5, seed=3)
        b = run_pipeline(processors=10, n_frames=40, period=2.0, jitter=0.5, seed=3)
        assert a == b

    def test_jitter_validation(self):
        with pytest.raises(WorkloadError):
            run_pipeline(processors=8, jitter=2.0, period=2.0)
