"""Unit tests for step 2: region construction."""

import numpy as np
import pytest

from repro.apps.junction.regions import mark_regions
from repro.errors import ConfigurationError


def pts(*pairs):
    return np.asarray(pairs, dtype=np.int64)


class TestClustering:
    def test_two_separate_clusters(self):
        points = pts((10, 10), (11, 11), (12, 10), (50, 50), (51, 51), (52, 50))
        regions = mark_regions(points, 3.0, (64, 64))
        assert len(regions) == 2

    def test_chained_linkage_merges(self):
        # Points 4 apart chain-link into one cluster at distance 5.
        points = pts((10, 10), (10, 14), (10, 18), (10, 22))
        regions = mark_regions(points, 5.0, (64, 64), min_points=4)
        assert len(regions) == 1

    def test_min_points_filters_noise(self):
        points = pts((10, 10), (50, 50), (51, 51), (52, 52))
        regions = mark_regions(points, 3.0, (64, 64), min_points=3)
        assert len(regions) == 1
        assert regions[0].points.shape[0] == 3

    def test_no_points(self):
        regions = mark_regions(np.empty((0, 2)), 5.0, (64, 64))
        assert regions == []

    def test_larger_distance_merges_more(self):
        points = pts((10, 10), (11, 10), (12, 10), (30, 10), (31, 10), (32, 10))
        near = mark_regions(points, 5.0, (64, 64))
        far = mark_regions(points, 25.0, (64, 64))
        assert len(near) == 2
        assert len(far) == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            mark_regions(pts((1, 1)), 0.0, (64, 64))
        with pytest.raises(ConfigurationError):
            mark_regions(pts((1, 1)), 5.0, (64, 64), min_points=0)


class TestGeometry:
    def test_bbox_dilated_and_clipped(self):
        points = pts((5, 5), (6, 6), (7, 5))
        [region] = mark_regions(points, 10.0, (64, 64))
        r_lo, c_lo, r_hi, c_hi = region.bbox
        assert r_lo == 0 and c_lo == 0  # clipped at the image edge
        assert r_hi >= 17 and c_hi >= 16

    def test_pixel_count_positive(self):
        points = pts((20, 20), (22, 22), (24, 20))
        [region] = mark_regions(points, 4.0, (64, 64))
        assert region.pixel_count > 0

    def test_hull_vertices_subset_of_members(self):
        points = pts((20, 20), (20, 30), (30, 20), (30, 30), (25, 25))
        [region] = mark_regions(points, 20.0, (64, 64))
        member_set = {tuple(p) for p in points.tolist()}
        for v in region.hull:
            assert tuple(int(x) for x in v) in member_set
        # Interior point (25,25) must not be a hull vertex.
        assert (25.0, 25.0) not in {tuple(v) for v in region.hull.tolist()}

    def test_collinear_cluster_degenerate_hull(self):
        points = pts((10, 10), (10, 14), (10, 18))
        [region] = mark_regions(points, 5.0, (64, 64))
        # Degenerate: falls back to member points.
        assert region.hull.shape[0] == 3

    def test_mask_contains_members(self):
        points = pts((20, 20), (23, 22), (26, 24), (24, 20))
        [region] = mark_regions(points, 4.0, (64, 64))
        mask = region.pixel_mask((64, 64))
        for r, c in points:
            assert mask[r, c]

    def test_mask_grows_with_dilation(self):
        points = pts((30, 30), (32, 32), (34, 30))
        [small] = mark_regions(points, 3.0, (64, 64))
        [large] = mark_regions(points, 12.0, (64, 64))
        assert large.pixel_mask((64, 64)).sum() > small.pixel_mask((64, 64)).sum()

    def test_mask_within_bbox(self):
        points = pts((30, 30), (32, 34), (35, 30))
        [region] = mark_regions(points, 5.0, (64, 64))
        mask = region.pixel_mask((64, 64))
        rows, cols = np.nonzero(mask)
        r_lo, c_lo, r_hi, c_hi = region.bbox
        assert rows.min() >= r_lo and rows.max() < r_hi
        assert cols.min() >= c_lo and cols.max() < c_hi

    def test_deterministic_ordering(self):
        points = pts((50, 50), (51, 51), (52, 52), (10, 10), (11, 11), (12, 12))
        a = mark_regions(points, 3.0, (64, 64))
        b = mark_regions(points[::-1].copy(), 3.0, (64, 64))
        assert [r.bbox for r in a] == [r.bbox for r in b]
