"""Unit tests for step 1: sampling + interest test."""

import numpy as np
import pytest

from repro.apps.junction.image import synthetic_image
from repro.apps.junction.sampling import (
    sample_image,
    stride_for_granularity,
)
from repro.errors import ConfigurationError


class TestStride:
    def test_perfect_squares(self):
        assert stride_for_granularity(16) == 4
        assert stride_for_granularity(64) == 8
        assert stride_for_granularity(1) == 1

    def test_non_square_rejected(self):
        with pytest.raises(ConfigurationError):
            stride_for_granularity(15)

    def test_nonpositive_rejected(self):
        with pytest.raises(ConfigurationError):
            stride_for_granularity(0)


class TestSampleImage:
    def test_sample_count_scales_with_granularity(self):
        img = synthetic_image(size=128, seed=1)
        fine = sample_image(img.pixels, 16)
        coarse = sample_image(img.pixels, 64)
        assert fine.sampled_count == pytest.approx(128 * 128 / 16, rel=0.05)
        assert coarse.sampled_count == pytest.approx(128 * 128 / 64, rel=0.1)

    def test_flat_image_finds_nothing(self):
        flat = np.full((64, 64), 0.5, dtype=np.float32)
        result = sample_image(flat, 16)
        assert result.interesting_count == 0
        assert result.sampled_count > 0

    def test_finds_points_near_structure(self):
        img = synthetic_image(size=128, n_junctions=4, seed=2, noise=0.0)
        result = sample_image(img.pixels, 16)
        assert result.interesting_count > 0
        # Every interesting point has high local contrast: it sits on or
        # next to a dark line in a white image.
        for r, c in result.points:
            patch = img.pixels[
                max(r - 1, 0) : r + 2, max(c - 1, 0) : c + 2
            ]
            assert patch.max() - patch.min() > 0.4

    def test_row_band_restricts(self):
        img = synthetic_image(size=128, seed=3)
        band = sample_image(img.pixels, 16, row_band=(0, 64))
        assert all(r < 64 for r, _ in band.points)

    def test_bands_partition_whole_image(self):
        img = synthetic_image(size=128, seed=4)
        whole = sample_image(img.pixels, 16)
        top = sample_image(img.pixels, 16, row_band=(0, 64))
        bottom = sample_image(img.pixels, 16, row_band=(64, 128))
        assert top.sampled_count + bottom.sampled_count == whole.sampled_count
        assert (
            top.interesting_count + bottom.interesting_count
            == whole.interesting_count
        )

    def test_empty_band(self):
        img = synthetic_image(size=64, n_junctions=2, seed=1)
        result = sample_image(img.pixels, 16, row_band=(32, 32))
        assert result.sampled_count == 0
        assert result.points.shape == (0, 2)

    def test_validation(self):
        img = synthetic_image(size=64, n_junctions=2, seed=1)
        with pytest.raises(ConfigurationError):
            sample_image(img.pixels, 16, threshold=0.0)
        with pytest.raises(ConfigurationError):
            sample_image(img.pixels, 16, row_band=(10, 200))
        with pytest.raises(ConfigurationError):
            sample_image(np.zeros(5, dtype=np.float32), 16)
