"""The decision-kernel layer: selection, build, and bit-identity.

Three layers of guarantees:

* **selection** — ``REPRO_KERNEL`` validation, the ``set_kernel``/``use``
  override used by benchmarks, the fallback counter, and the
  ``kernel_backend`` / ``kernel_fallbacks`` fields of ``perf_snapshot``;
* **build** — the on-demand C build is cached by mtime and stamps an ABI
  version that the ctypes binding refuses to load when mismatched;
* **bit-identity** — the compiled kernels return *identical* decisions
  (and identical floats) to the pure-Python implementation and to the
  scalar reference walk, on randomized fragmented profiles.  Compiled
  cases are skipped (not silently passed) when no compiler is present.
"""

from __future__ import annotations

import math
import random

import numpy as np
import pytest

from repro.core import kernels
from repro.core.arbitrator import QoSArbitrator
from repro.core.first_fit import earliest_fit
from repro.core.kernels import build, pykernels
from repro.core.profile import AvailabilityProfile
from repro.errors import ConfigurationError


def _have_compiled() -> bool:
    try:
        with kernels.use("compiled"):
            return True
    except ConfigurationError:
        return False


needs_compiled = pytest.mark.skipif(
    not _have_compiled(), reason="no C compiler / compiled kernel available"
)


def _fragmented_profile(rng: random.Random, capacity: int = 16):
    profile = AvailabilityProfile(capacity)
    for _ in range(rng.randint(0, 30)):
        t0 = rng.randrange(0, 40) * 0.25
        t1 = t0 + rng.randrange(1, 12) * 0.25
        avail = profile.min_available(t0, t1)
        if avail:
            profile.reserve(t0, t1, rng.randint(1, avail))
    return profile


# -- selection ---------------------------------------------------------


def test_requested_mode_rejects_unknown(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL", "turbo")
    with pytest.raises(ConfigurationError):
        kernels.requested_mode()


def test_use_restores_previous_mode():
    before = kernels.kernel_backend()
    with kernels.use("python"):
        assert kernels.kernel_backend() == "python"
        assert kernels.active() is pykernels
    assert kernels.kernel_backend() == before


def test_note_fallback_counts_and_surfaces_in_perf_snapshot():
    before = kernels.stats.fallbacks
    kernels.note_fallback("unit-test fallback")
    assert kernels.stats.fallbacks == before + 1
    assert kernels.stats.last_reason == "unit-test fallback"
    snap = QoSArbitrator(8).perf_snapshot()
    assert snap["kernel_backend"] in ("compiled", "python")
    assert snap["kernel_fallbacks"] >= before + 1


def test_python_kernels_do_not_support_batch():
    assert pykernels.compiled is False
    assert pykernels.supports_batch is False


# -- build / ABI -------------------------------------------------------


@needs_compiled
def test_build_is_cached_and_abi_stamped():
    path = build.ensure_built()
    assert path.exists()
    # a second call must be a no-op returning the same artifact
    assert build.ensure_built() == path
    from repro.core.kernels import compiled

    lib = compiled.load()
    assert int(lib._lib.repro_abi_version()) == build.ABI_VERSION
    assert lib.compiled is True and lib.supports_batch is True


def test_missing_compiler_raises_configuration_error(monkeypatch):
    monkeypatch.setattr(build, "find_compiler", lambda: None)
    monkeypatch.setattr(
        build.Path, "exists", lambda self: False, raising=False
    )
    with pytest.raises(ConfigurationError):
        build.ensure_built()


# -- bit-identity ------------------------------------------------------


def test_free_area_prefix_matches_scalar_loop():
    rng = random.Random(7)
    for _ in range(50):
        profile = _fragmented_profile(rng)
        times, avail = profile._mirrors()  # noqa: SLF001
        got = kernels.free_area_prefix(times, avail)
        acc, expect = 0.0, [0.0]
        for k in range(1, len(profile._times)):  # noqa: SLF001
            acc += profile._avail[k - 1] * (  # noqa: SLF001
                profile._times[k] - profile._times[k - 1]  # noqa: SLF001
            )
            expect.append(acc)
        assert got.tolist() == expect  # bit-exact, not approx


@needs_compiled
def test_compiled_matches_python_kernels_on_random_probes():
    from repro.core.kernels import compiled

    clib = compiled.load()
    rng = random.Random(11)
    for _ in range(200):
        profile = _fragmented_profile(rng)
        times, avail = profile._mirrors()  # noqa: SLF001
        n = len(profile._times)  # noqa: SLF001
        i = rng.randrange(0, n)
        procs = rng.randint(1, profile.capacity)
        dur = rng.randrange(1, 10) * 0.25
        release = float(times[i])
        deadline = release + rng.randrange(1, 40) * 0.5
        c_start, _ = clib.earliest_fit_arrays(
            times, avail, n, i, procs, dur, release, deadline
        )
        p_start, _ = pykernels.earliest_fit_arrays(
            times, avail, n, i, procs, dur, release, deadline
        )
        assert c_start == p_start  # exact float equality or both None
        lo = rng.randrange(0, n)
        hi = rng.randrange(lo + 1, n + 1)
        assert clib.range_min(avail, lo, hi) == pykernels.range_min(
            avail, lo, hi
        )


@needs_compiled
def test_kernel_backend_decisions_match_scalar_reference():
    rng = random.Random(23)
    for _ in range(60):
        seed = rng.randrange(1 << 30)
        case_rng = random.Random(seed)
        starts = {}
        for kmode in ("compiled", "python"):
            with kernels.use(kmode):
                prof_rng = random.Random(seed)
                scalar = _fragmented_profile(prof_rng, capacity=16)
                kernel = scalar.copy()
                kernel._backend = "kernel"  # noqa: SLF001
                procs = case_rng.randint(1, 16)
                dur = case_rng.randrange(1, 12) * 0.25
                release = case_rng.randrange(0, 30) * 0.5
                deadline = release + case_rng.randrange(1, 50) * 0.5
                want = earliest_fit(scalar, procs, dur, release, deadline)
                got = earliest_fit(kernel, procs, dur, release, deadline)
                assert got == want
                starts[kmode] = want
            case_rng = random.Random(seed)  # same probe for both modes
        assert starts["compiled"] == starts["python"]


def test_range_min_matches_python_min():
    rng = random.Random(3)
    avail = np.array([rng.randint(0, 9) for _ in range(64)], dtype=np.int64)
    for _ in range(100):
        lo = rng.randrange(0, 64)
        hi = rng.randrange(lo + 1, 65)
        assert kernels.active().range_min(avail, lo, hi) == min(
            avail[lo:hi].tolist()
        )


def test_earliest_fit_arrays_infinite_tail():
    # the last segment extends to +inf: any fit starting there succeeds
    times = np.array([0.0, 1.0], dtype=np.float64)
    avail = np.array([0, 4], dtype=np.int64)
    start, _ = kernels.active().earliest_fit_arrays(
        times, avail, 2, 0, 2, 100.0, 0.0, math.inf
    )
    assert start == 1.0
