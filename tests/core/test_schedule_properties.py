"""Property tests: schedule accounting survives commit/rollback interleaving.

The schedule's incremental accounting (``committed_area``, the utilization
window extremes, the profile itself) must always agree with a from-scratch
replay of the placements that survived — whatever order commits and
rollbacks happened in.  This is the property the stale-window rollback bug
violated: a rollback of the earliest-released or latest-finishing job left
``first_release``/``last_finish`` pointing at the departed placement.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.first_fit import earliest_fit
from repro.core.placement import ChainPlacement, Placement
from repro.core.resources import ProcessorTimeRequest
from repro.core.schedule import Schedule
from repro.model.chain import TaskChain
from repro.model.task import TaskSpec

CAPACITY = 6
_LOOSE_DEADLINE = 1e6


def _place(schedule: Schedule, job_id: int, procs: int, duration: float,
           release: float) -> ChainPlacement | None:
    """Earliest-fit a one-task chain onto the schedule's live profile."""
    start = earliest_fit(schedule.profile, procs, duration, release)
    if start is None:
        return None
    chain = TaskChain(
        (TaskSpec("t", ProcessorTimeRequest(procs, duration),
                  deadline=_LOOSE_DEADLINE),)
    )
    return ChainPlacement(
        job_id=job_id,
        chain_index=0,
        chain=chain,
        placements=(Placement.rigid(chain[0], start),),
        release=release,
    )


@st.composite
def interleavings(draw, max_ops: int = 16):
    """A list of ('commit', procs, duration, release) / ('rollback', k) ops."""
    ops = []
    n = draw(st.integers(min_value=1, max_value=max_ops))
    live = 0
    for _ in range(n):
        if live and draw(st.booleans()):
            ops.append(("rollback", draw(st.integers(0, live - 1))))
            live -= 1
        else:
            ops.append(
                (
                    "commit",
                    draw(st.integers(1, CAPACITY)),
                    draw(st.integers(1, 16)) / 2,
                    draw(st.integers(0, 64)) / 2,
                )
            )
            live += 1
    return ops


@given(interleavings())
def test_interleaved_commit_rollback_matches_replay(ops):
    schedule = Schedule(CAPACITY)
    live: list[ChainPlacement] = []
    for job_id, op in enumerate(ops):
        if op[0] == "commit":
            _, procs, duration, release = op
            cp = _place(schedule, job_id, procs, duration, release)
            assert cp is not None  # infinite horizon: always placeable
            schedule.commit(cp)
            live.append(cp)
        else:
            _, k = op
            schedule.rollback(live.pop(k))

    # Replay only the survivors, in their original commit order, onto a
    # fresh schedule; every aggregate must agree with the live one.
    replay = Schedule(CAPACITY)
    for cp in live:
        replay.commit(cp)

    assert schedule.committed_jobs == replay.committed_jobs == len(live)
    assert schedule.committed_area == pytest.approx(replay.committed_area)
    assert schedule.first_release == replay.first_release
    assert schedule.last_finish == replay.last_finish
    if live:
        assert schedule.utilization() == pytest.approx(replay.utilization())
        assert schedule.first_release == min(cp.release for cp in live)
        assert schedule.last_finish == max(cp.finish for cp in live)
    else:
        assert schedule.utilization() == 0.0
        assert schedule.first_release == math.inf
        assert schedule.last_finish == -math.inf
    assert schedule.profile == replay.profile
    schedule.check_consistency()


@given(interleavings())
def test_interleaving_keeps_perf_counter_balance(ops):
    """commits - rollbacks == live placements, and the profile drains to idle."""
    schedule = Schedule(CAPACITY)
    live: list[ChainPlacement] = []
    for job_id, op in enumerate(ops):
        if op[0] == "commit":
            cp = _place(schedule, job_id, op[1], op[2], op[3])
            schedule.commit(cp)
            live.append(cp)
        else:
            schedule.rollback(live.pop(op[1]))
    snap = schedule.perf_snapshot()
    assert snap.get("commits", 0) - snap.get("rollbacks", 0) == len(live)
    # Rolling back the rest must return the machine to a fully idle profile.
    for cp in list(live):
        schedule.rollback(cp)
    assert schedule.profile == Schedule(CAPACITY).profile
    assert schedule.committed_area == pytest.approx(0.0)
