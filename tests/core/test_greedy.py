"""Unit and property tests for the greedy heuristic (Section 5.2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.greedy import GreedyScheduler
from repro.core.resources import ProcessorTimeRequest
from repro.core.schedule import Schedule
from repro.model.chain import TaskChain
from repro.model.job import Job
from repro.model.task import TaskSpec
from tests.conftest import task_chains


def chain(*specs, label=""):
    return TaskChain(tuple(specs), label=label)


def task(name, procs, dur, deadline):
    return TaskSpec(name, ProcessorTimeRequest(procs, dur), deadline=deadline)


class TestPlaceChain:
    def test_back_to_back_on_empty_machine(self):
        s = Schedule(4)
        g = GreedyScheduler(s)
        c = chain(task("a", 2, 5.0, 100.0), task("b", 4, 3.0, 100.0))
        cp = g.place_chain(c, release=0.0)
        assert cp is not None
        assert cp.placements[0].start == 0.0
        assert cp.placements[1].start == 5.0
        assert cp.finish == 8.0

    def test_gap_inserted_when_needed(self):
        s = Schedule(4)
        s.profile.reserve(5.0, 10.0, 3)  # blocks the wide second task
        g = GreedyScheduler(s)
        c = chain(task("a", 1, 5.0, 100.0), task("b", 4, 3.0, 100.0))
        cp = g.place_chain(c, release=0.0)
        assert cp.placements[0].start == 0.0
        assert cp.placements[1].start == 10.0

    def test_deadline_failure_returns_none(self):
        s = Schedule(4)
        s.profile.reserve(0.0, 50.0, 4)
        g = GreedyScheduler(s)
        c = chain(task("a", 1, 5.0, 20.0))
        assert g.place_chain(c, release=0.0) is None

    def test_second_task_deadline_failure(self):
        s = Schedule(4)
        s.profile.reserve(5.0, 50.0, 4)
        g = GreedyScheduler(s)
        c = chain(task("a", 1, 5.0, 20.0), task("b", 2, 5.0, 30.0))
        assert g.place_chain(c, release=0.0) is None

    def test_does_not_modify_schedule(self):
        s = Schedule(4)
        before = s.profile.copy()
        GreedyScheduler(s).place_chain(
            chain(task("a", 2, 5.0, 100.0)), release=0.0
        )
        assert s.profile == before

    def test_release_respected(self):
        s = Schedule(4)
        g = GreedyScheduler(s)
        cp = g.place_chain(chain(task("a", 1, 2.0, 50.0)), release=7.5)
        assert cp.placements[0].start == 7.5

    @given(task_chains(max_len=3, max_procs=4))
    def test_placement_always_valid(self, c):
        s = Schedule(4)
        s.profile.reserve(0.0, 10.0, 1)
        cp = GreedyScheduler(s).place_chain(c, release=2.0)
        if cp is not None:
            cp.validate()
            for pl in cp.placements:
                assert s.profile.min_available(pl.start, pl.end) >= pl.processors


class TestChooseAndScheduleJob:
    def make_job(self, release=0.0):
        fast = chain(task("a", 4, 2.0, 100.0), label="fast")
        slow = chain(task("a", 1, 8.0, 100.0), label="slow")
        return Job.tunable_of([fast, slow], release=release)

    def test_choose_picks_earliest_finish(self):
        s = Schedule(4)
        g = GreedyScheduler(s)
        chosen = g.choose(self.make_job())
        assert chosen.chain.label == "fast"

    def test_choose_falls_back_when_preferred_blocked(self):
        s = Schedule(4)
        s.profile.reserve(0.0, 95.0, 1)  # wide chain can't fit by deadline
        g = GreedyScheduler(s)
        chosen = g.choose(self.make_job())
        assert chosen.chain.label == "slow"

    def test_schedule_job_commits(self):
        s = Schedule(4)
        g = GreedyScheduler(s)
        cp = g.schedule_job(self.make_job())
        assert cp is not None
        assert s.committed_jobs == 1
        assert s.profile.available_at(1.0) == 0

    def test_schedule_job_rejects(self):
        s = Schedule(4)
        s.profile.reserve(0.0, 500.0, 4)
        assert GreedyScheduler(s).schedule_job(self.make_job()) is None
        assert s.committed_jobs == 0

    def test_job_wider_than_machine_skipped(self):
        s = Schedule(2)
        wide = chain(task("w", 4, 1.0, 100.0))
        narrow = chain(task("n", 1, 1.0, 100.0))
        job = Job.tunable_of([wide, narrow])
        cp = GreedyScheduler(s).choose(job)
        assert cp.chain is job.chains[1]

    def test_choose_among_restricts(self):
        s = Schedule(4)
        g = GreedyScheduler(s)
        job = self.make_job()
        cp = g.choose_among(job, [1])
        assert cp.chain.label == "slow"

    def test_choose_among_empty(self):
        s = Schedule(4)
        s.profile.reserve(0.0, 500.0, 4)
        job = self.make_job()
        assert GreedyScheduler(s).choose_among(job, [0, 1]) is None

    def test_candidates_reports_all_feasible(self):
        s = Schedule(4)
        cands = GreedyScheduler(s).candidates(self.make_job())
        assert {c.chain.label for c in cands} == {"fast", "slow"}


class TestEarliestFinishOptimality:
    """The heuristic achieves each chain's earliest possible finish time."""

    @given(task_chains(max_len=3, max_procs=4), st.integers(0, 3))
    def test_no_delayed_start_improves_finish(self, c, delay_steps):
        """Delaying the first task never lets the chain finish earlier."""
        s = Schedule(4)
        s.profile.reserve(0.0, 6.0, 2)
        g = GreedyScheduler(s)
        base = g.place_chain(c, release=0.0)
        if base is None:
            return
        delayed = g.place_chain(c, release=0.5 * (delay_steps + 1))
        if delayed is not None:
            assert delayed.finish >= base.finish - 1e-9
