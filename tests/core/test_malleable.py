"""Unit and property tests for malleable scheduling (Section 5.4)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.malleable import MalleableScheduler, MalleableStrategy
from repro.core.resources import ProcessorTimeRequest
from repro.core.schedule import Schedule
from repro.errors import ConfigurationError
from repro.model.chain import TaskChain
from repro.model.job import Job
from repro.model.task import TaskSpec


def task(name, procs, dur, deadline, max_concurrency=0):
    return TaskSpec(
        name,
        ProcessorTimeRequest(procs, dur),
        deadline=deadline,
        max_concurrency=max_concurrency or procs,
    )


def chain(*specs, label=""):
    return TaskChain(tuple(specs), label=label)


class TestWidestFirst:
    def test_uses_full_width_on_empty_machine(self):
        s = Schedule(8)
        m = MalleableScheduler(s)
        cp = m.place_chain(chain(task("a", 4, 8.0, 100.0)), release=0.0)
        assert cp.placements[0].processors == 4
        assert cp.placements[0].duration == 8.0

    def test_narrows_to_meet_deadline(self):
        s = Schedule(8)
        # 4 processors busy until 50; a 4-wide task can't finish by 20,
        # but narrowed variants can use the 4 free processors immediately.
        s.profile.reserve(0.0, 50.0, 4)
        m = MalleableScheduler(s)
        cp = m.place_chain(chain(task("a", 8, 4.0, 20.0)), release=0.0)
        assert cp is not None
        pl = cp.placements[0]
        assert pl.processors == 4
        assert pl.duration == pytest.approx(8.0)  # area conserved: 32
        assert pl.end <= 20.0

    def test_work_conservation(self):
        s = Schedule(8)
        s.profile.reserve(0.0, 30.0, 5)
        m = MalleableScheduler(s)
        spec = task("a", 6, 5.0, 200.0)
        cp = m.place_chain(chain(spec), release=0.0)
        assert cp.placements[0].area == pytest.approx(spec.area)

    def test_capacity_caps_width(self):
        s = Schedule(4)
        m = MalleableScheduler(s)
        cp = m.place_chain(chain(task("a", 8, 2.0, 100.0)), release=0.0)
        assert cp is not None
        assert cp.placements[0].processors == 4
        assert cp.placements[0].duration == pytest.approx(4.0)

    def test_min_processors_enforced(self):
        s = Schedule(8)
        s.profile.reserve(0.0, 1000.0, 7)
        m = MalleableScheduler(s, min_processors=2)
        assert m.place_chain(chain(task("a", 4, 2.0, 50.0)), release=0.0) is None

    def test_min_processors_validation(self):
        with pytest.raises(ConfigurationError):
            MalleableScheduler(Schedule(4), min_processors=0)

    def test_widest_first_prefers_width_over_finish(self):
        """The literal reading: first *feasible* from the top, even if a
        narrower shape would finish earlier."""
        s = Schedule(8)
        # 8-wide possible only at t=10; 4-wide possible at t=0.
        s.profile.reserve(0.0, 10.0, 4)
        m = MalleableScheduler(s, strategy=MalleableStrategy.WIDEST_FIRST_FEASIBLE)
        cp = m.place_chain(chain(task("a", 8, 4.0, 100.0)), release=0.0)
        assert cp.placements[0].processors == 8
        assert cp.placements[0].start == 10.0


class TestEarliestFinishStrategy:
    def test_picks_earliest_finishing_width(self):
        s = Schedule(8)
        s.profile.reserve(0.0, 10.0, 4)
        m = MalleableScheduler(s, strategy=MalleableStrategy.EARLIEST_FINISH)
        cp = m.place_chain(chain(task("a", 8, 4.0, 100.0)), release=0.0)
        pl = cp.placements[0]
        # 4-wide starting at 0 finishes at 8; 8-wide at 10 finishes at 14.
        assert pl.processors == 4
        assert pl.end == pytest.approx(8.0)

    def test_tie_goes_to_wider(self):
        s = Schedule(8)
        m = MalleableScheduler(s, strategy=MalleableStrategy.EARLIEST_FINISH)
        cp = m.place_chain(chain(task("a", 8, 4.0, 100.0)), release=0.0)
        # On an empty machine the widest is strictly fastest anyway.
        assert cp.placements[0].processors == 8

    def test_near_tie_set_favours_widest_within_eps(self):
        """Exact regression for the running-best drift bug.

        Finish times wide-to-narrow: 10, 10-0.6eps, 10-1.2eps.  The true
        minimum is the narrow 10-1.2eps; the width-2 candidate ties it
        within TIME_EPS while width 3 (1.2eps away) does not.  Comparing
        each candidate only against the running best instead discards
        width 2 against width 3's end and hands the tie to width 1.
        """
        s = Schedule(3)
        # Free width over time: 0 until the 1-wide window opens, then 1,
        # then 2, then 3 — staggered so each width's earliest finish lands
        # sub-eps apart.
        s.profile.reserve(0.0, 4.0 - 1.2e-9, 1)
        s.profile.reserve(0.0, 7.0 - 0.6e-9, 1)
        s.profile.reserve(0.0, 8.0, 1)
        m = MalleableScheduler(s, strategy=MalleableStrategy.EARLIEST_FINISH)
        cp = m.place_chain(chain(task("a", 3, 2.0, 100.0)), release=0.0)
        pl = cp.placements[0]
        assert pl.processors == 2
        assert pl.end == pytest.approx(10.0, abs=1e-8)

    def test_degenerate_band_min_processors_equals_width_cap(self):
        """A single-width band must still place (and pick that width)."""
        s = Schedule(3)
        s.profile.reserve(0.0, 8.0, 1)  # widest-only fit starts at 8
        m = MalleableScheduler(
            s, strategy=MalleableStrategy.EARLIEST_FINISH, min_processors=3
        )
        cp = m.place_chain(chain(task("a", 3, 2.0, 100.0)), release=0.0)
        pl = cp.placements[0]
        assert pl.processors == 3
        assert pl.start == pytest.approx(8.0)


class TestQuickReject:
    def test_wide_task_not_rejected(self):
        """Rigid quick-reject would kill an 8-wide task on a 4-machine."""
        s = Schedule(4)
        m = MalleableScheduler(s)
        job = Job.rigid(chain(task("a", 8, 2.0, 100.0)))
        assert m.schedule_job(job) is not None

    def test_impossible_deadline_rejected_cheaply(self):
        s = Schedule(4)
        m = MalleableScheduler(s)
        # area 32 on <=4 procs takes >= 8 time > deadline 5.
        assert m._quick_reject(chain(task("a", 8, 4.0, 5.0)))

    def test_feasible_not_rejected(self):
        s = Schedule(4)
        m = MalleableScheduler(s)
        assert not m._quick_reject(chain(task("a", 8, 4.0, 100.0)))


class TestMalleableJobs:
    def test_tunable_job_scheduling(self):
        s = Schedule(8)
        m = MalleableScheduler(s)
        job = Job.tunable_of(
            [
                chain(task("a", 8, 4.0, 50.0), label="wide"),
                chain(task("a", 2, 16.0, 50.0), label="narrow"),
            ]
        )
        cp = m.schedule_job(job)
        assert cp is not None
        s.check_consistency()

    @given(st.integers(1, 8), st.integers(1, 8))
    def test_area_invariant_across_widths(self, procs, cap):
        s = Schedule(cap)
        m = MalleableScheduler(s)
        spec = task("a", procs, 4.0, 1000.0)
        cp = m.place_chain(chain(spec), release=0.0)
        assert cp is not None
        assert cp.placements[0].area == pytest.approx(spec.area)
        assert cp.placements[0].processors <= cap
