"""Unit and property tests for the segment-tree availability index."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.segtree import SegmentTreeIndex


def brute_first_at_least(avail, start, p):
    for i in range(max(start, 0), len(avail)):
        if avail[i] >= p:
            return i
    return -1


def brute_first_below(avail, start, p):
    for i in range(max(start, 0), len(avail)):
        if avail[i] < p:
            return i
    return -1


def make_tree(times, avail):
    return SegmentTreeIndex(
        np.asarray(times, dtype=np.float64), np.asarray(avail, dtype=np.int64)
    )


class TestQueries:
    def test_known_profile(self):
        times = [0.0, 1.0, 2.0, 3.0, 4.0]
        avail = [4, 1, 3, 0, 8]
        tree = make_tree(times, avail)
        assert tree.first_at_least(0, 3) == 0
        assert tree.first_at_least(1, 3) == 2
        assert tree.first_at_least(3, 3) == 4
        assert tree.first_at_least(0, 9) == -1
        assert tree.first_below(0, 3) == 1
        assert tree.first_below(2, 3) == 3
        assert tree.first_below(4, 8) == -1
        assert tree.range_min(0, 5) == 0
        assert tree.range_min(0, 3) == 1
        assert tree.range_min(4, 5) == 8

    def test_prefix_is_free_area_integral(self):
        times = [0.0, 2.0, 5.0]
        avail = [3, 1, 7]
        tree = make_tree(times, avail)
        np.testing.assert_array_equal(tree.prefix(), [0.0, 6.0, 9.0])

    def test_start_past_end_returns_missing(self):
        tree = make_tree([0.0, 1.0], [2, 5])
        assert tree.first_at_least(2, 1) == -1
        assert tree.first_below(2, 10) == -1

    def test_single_segment(self):
        tree = make_tree([0.0], [3])
        assert tree.first_at_least(0, 3) == 0
        assert tree.first_at_least(0, 4) == -1
        assert tree.range_min(0, 1) == 3

    @given(st.data())
    def test_queries_match_brute_force(self, data):
        n = data.draw(st.integers(min_value=1, max_value=40))
        avail = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=16), min_size=n, max_size=n
            )
        )
        times = [float(i) for i in range(n)]
        tree = make_tree(times, avail)
        tree.check_against(times, avail)
        for _ in range(6):
            start = data.draw(st.integers(min_value=0, max_value=n + 1))
            p = data.draw(st.integers(min_value=0, max_value=17))
            assert tree.first_at_least(start, p) == brute_first_at_least(
                avail, start, p
            )
            assert tree.first_below(start, p) == brute_first_below(avail, start, p)
            lo = data.draw(st.integers(min_value=0, max_value=n - 1))
            hi = data.draw(st.integers(min_value=lo + 1, max_value=n))
            assert tree.range_min(lo, hi) == min(avail[lo:hi])


class TestConsolidate:
    @given(st.data())
    def test_splice_equals_fresh_build(self, data):
        """Incremental consolidation must equal a from-scratch index."""
        n = data.draw(st.integers(min_value=1, max_value=30))
        avail = data.draw(
            st.lists(st.integers(min_value=0, max_value=9), min_size=n, max_size=n)
        )
        times = [float(i) for i in range(n)]
        tree = make_tree(times, avail)
        for _ in range(data.draw(st.integers(min_value=1, max_value=5))):
            # Random suffix rewrite: change availability from some index on,
            # possibly growing or shrinking the segment list.
            cut = data.draw(st.integers(min_value=0, max_value=len(avail)))
            tail_len = data.draw(st.integers(min_value=0, max_value=10))
            tail = data.draw(
                st.lists(
                    st.integers(min_value=0, max_value=9),
                    min_size=tail_len,
                    max_size=tail_len,
                )
            )
            avail = avail[:cut] + tail
            if not avail:
                avail = [0]
            times = [float(i) for i in range(len(avail))]
            tree.mark_dirty(min(cut, len(avail) - 1))
            tree.consolidate(
                np.asarray(times, dtype=np.float64),
                np.asarray(avail, dtype=np.int64),
            )
            tree.check_against(times, avail)
            fresh = make_tree(times, avail)
            np.testing.assert_array_equal(tree.prefix(), fresh.prefix())

    def test_check_against_catches_corruption(self):
        times = [0.0, 1.0, 2.0, 3.0]
        avail = [4, 1, 3, 0]
        tree = make_tree(times, avail)
        tree.check_against(times, avail)
        with pytest.raises(AssertionError):
            tree.check_against(times, [4, 2, 3, 0])

    def test_counters_advance(self):
        times = [float(i) for i in range(8)]
        avail = [1, 2, 3, 4, 5, 6, 7, 8]
        tree = make_tree(times, avail)
        assert tree.rebuilds >= 1
        before = tree.visited
        tree.first_at_least(0, 5)
        assert tree.visited > before
