"""Unit tests for configuration-choice policies (Section 5.2 tie-breaks)."""

import random

import pytest

from repro.core.placement import ChainPlacement, Placement
from repro.core.policies import TieBreakPolicy, select_candidate, window_utilization
from repro.core.resources import ProcessorTimeRequest
from repro.core.schedule import Schedule
from repro.model.chain import TaskChain
from repro.model.task import TaskSpec


def cp_of(procs_durs, job_id=1, chain_index=0, release=0.0, start=0.0):
    """Back-to-back placements of the given (procs, dur) tasks."""
    tasks = tuple(
        TaskSpec(f"t{i}", ProcessorTimeRequest(p, d), deadline=1000.0)
        for i, (p, d) in enumerate(procs_durs)
    )
    chain = TaskChain(tasks)
    placements = []
    t = start
    for spec in tasks:
        placements.append(Placement.rigid(spec, t))
        t += spec.duration
    return ChainPlacement(
        job_id=job_id,
        chain_index=chain_index,
        chain=chain,
        placements=tuple(placements),
        release=release,
    )


class TestWindowUtilization:
    def test_lone_candidate_on_empty_machine(self):
        s = Schedule(4)
        cand = cp_of([(2, 5.0)])
        # area 10 over 4 x 5 window
        assert window_utilization(s, cand) == pytest.approx(0.5)

    def test_counts_existing_commitments(self):
        s = Schedule(4)
        s.commit(cp_of([(2, 5.0)], job_id=0))
        cand = cp_of([(2, 5.0)], job_id=1)
        assert window_utilization(s, cand) == pytest.approx(1.0)

    def test_degenerate_window(self):
        s = Schedule(4)
        cand = cp_of([(1, 1.0)], release=5.0, start=5.0)
        # window [5, 6) is fine; shrink release beyond finish is impossible,
        # but release after origin-compaction is exercised elsewhere.
        assert 0 < window_utilization(s, cand) <= 1.0


class TestSelectCandidate:
    def test_earliest_finish_wins_outright(self):
        s = Schedule(8)
        fast = cp_of([(2, 5.0)], chain_index=0)
        slow = cp_of([(2, 9.0)], chain_index=1)
        assert select_candidate(s, [slow, fast]) is fast

    def test_requires_candidates(self):
        with pytest.raises(ValueError):
            select_candidate(Schedule(2), [])

    def test_first_policy_keeps_order(self):
        s = Schedule(8)
        a = cp_of([(2, 5.0)], chain_index=0)
        b = cp_of([(2, 5.0)], chain_index=1)
        assert select_candidate(s, [a, b], TieBreakPolicy.FIRST) is a

    def test_paper_policy_prefers_higher_utilization(self):
        s = Schedule(8)
        # Same finish, different areas: bigger area = higher window util.
        wide = cp_of([(4, 5.0)], chain_index=0)
        narrow = cp_of([(2, 5.0)], chain_index=1)
        assert select_candidate(s, [narrow, wide], TieBreakPolicy.PAPER) is wide

    def test_paper_policy_prefix_tiebreak(self):
        s = Schedule(8)
        # Equal finishes and equal total areas; prefix differs:
        # light-then-heavy defers resources and must win.
        light_first = cp_of([(1, 5.0), (3, 5.0)], chain_index=0)
        heavy_first = cp_of([(3, 5.0), (1, 5.0)], chain_index=1)
        chosen = select_candidate(
            s, [heavy_first, light_first], TieBreakPolicy.PAPER
        )
        assert chosen is light_first

    def test_prefix_policy(self):
        s = Schedule(8)
        light_first = cp_of([(1, 5.0), (3, 5.0)], chain_index=0)
        heavy_first = cp_of([(3, 5.0), (1, 5.0)], chain_index=1)
        chosen = select_candidate(
            s, [heavy_first, light_first], TieBreakPolicy.PREFIX
        )
        assert chosen is light_first

    def test_random_policy_seeded(self):
        s = Schedule(8)
        a = cp_of([(2, 5.0)], chain_index=0)
        b = cp_of([(2, 5.0)], chain_index=1)
        rng1 = random.Random(0)
        rng2 = random.Random(0)
        picks1 = [select_candidate(s, [a, b], TieBreakPolicy.RANDOM, rng1) for _ in range(10)]
        picks2 = [select_candidate(s, [a, b], TieBreakPolicy.RANDOM, rng2) for _ in range(10)]
        assert picks1 == picks2
        assert {id(p) for p in picks1} <= {id(a), id(b)}

    def test_near_tie_within_epsilon(self):
        s = Schedule(8)
        a = cp_of([(2, 5.0)], chain_index=0)
        b = cp_of([(4, 5.0)], chain_index=1)
        # b has identical finish: tie resolved by utilization -> b.
        assert select_candidate(s, [a, b], TieBreakPolicy.PAPER) is b
