"""Property tests: the concrete profile back-ends are bit-equivalent.

The scalar walk is the reference implementation; the vector scan, the
segment-tree index and the kernel layer are performance back-ends that
must return *identical* results — not merely close ones — under every
interleaving of mutation and query the scheduler can produce: reserve /
release / compact on the profile, and the Schedule commit / rollback
cycle on top.  Bit-equality is what lets the benchmarks checksum
admission decisions across back-ends
(``benchmarks/bench_fragmentation.py``) and what the ``"tree"`` /
``"kernel"`` opt-ins rely on to be pure performance switches.

The ``"kernel"`` back-end routes through whichever decision kernel is
active (compiled ``.so`` or the pure-NumPy fallback, per
``REPRO_KERNEL``), so this file transitively pins both implementations
to the scalar reference.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.first_fit import earliest_fit
from repro.core.greedy import GreedyScheduler
from repro.core.profile import AvailabilityProfile
from repro.core.schedule import Schedule
from tests.conftest import nice_durations, nice_times, task_chains

#: The concrete back-ends ("auto" only delegates to these).
BACKENDS = ("scalar", "vector", "tree", "kernel")


@st.composite
def profile_op_streams(draw, capacity: int, max_ops: int = 20):
    """An applicable interleaving of reserve / release / compact ops.

    A shadow profile is simulated alongside so every reserve fits and
    every release undoes a still-intact reservation.  Compaction forgets
    history, so reservations starting before the compact cut become
    unreleasable and are dropped from the release pool.
    """
    shadow = AvailabilityProfile(capacity)
    live: list[tuple[float, float, int]] = []
    floor = 0.0  # latest compact cut
    ops: list[tuple[str, float, float, int]] = []
    for _ in range(draw(st.integers(min_value=1, max_value=max_ops))):
        kind = draw(
            st.sampled_from(("reserve", "reserve", "reserve", "release", "compact"))
        )
        if kind == "release" and live:
            idx = draw(st.integers(min_value=0, max_value=len(live) - 1))
            t0, t1, procs = live.pop(idx)
            shadow.release(t0, t1, procs)
            ops.append(("release", t0, t1, procs))
        elif kind == "compact":
            before = floor + draw(nice_durations)
            shadow.compact(before)
            floor = max(floor, before)
            live = [op for op in live if op[0] >= floor]
            ops.append(("compact", before, 0.0, 0))
        else:
            t0 = floor + draw(nice_times)
            t1 = t0 + draw(nice_durations)
            avail = shadow.min_available(t0, t1)
            if avail == 0:
                continue
            procs = draw(st.integers(min_value=1, max_value=avail))
            shadow.reserve(t0, t1, procs)
            live.append((t0, t1, procs))
            ops.append(("reserve", t0, t1, procs))
    return ops


@given(st.data())
def test_mutation_interleaving_bit_equivalence(data):
    """Same op stream -> bit-identical state and query answers everywhere."""
    capacity = data.draw(st.integers(min_value=1, max_value=8))
    ops = data.draw(profile_op_streams(capacity))
    profiles = {b: AvailabilityProfile(capacity, backend=b) for b in BACKENDS}
    ref = profiles["scalar"]
    for kind, a, b, c in ops:
        for profile in profiles.values():
            if kind == "reserve":
                profile.reserve(a, b, c)
            elif kind == "release":
                profile.release(a, b, c)
            else:
                profile.compact(a)
        for profile in profiles.values():
            assert profile._times == ref._times
            assert profile._avail == ref._avail
        # Paired queries after every mutation: this is what actually
        # drives the tree's lazy consolidate through dirty state.
        q0 = max(ref._times[0], data.draw(nice_times))
        dur = data.draw(nice_durations)
        procs = data.draw(st.integers(min_value=1, max_value=capacity))
        mins = {n: p.min_available(q0, q0 + dur) for n, p in profiles.items()}
        areas = {n: p.free_area(q0, q0 + dur) for n, p in profiles.items()}
        fits = {
            n: earliest_fit(p, procs, dur, q0, q0 + 4 * dur + 64.0)
            for n, p in profiles.items()
        }
        assert len(set(mins.values())) == 1, mins
        assert len(set(areas.values())) == 1, areas  # bit-equal, not approx
        assert len(set(fits.values())) == 1, fits
    for profile in profiles.values():
        profile.check_invariants()  # tree back-end cross-checks the index


@given(st.data())
def test_schedule_commit_rollback_equivalence(data):
    """Place / commit / rollback through the scheduler stays in lock-step."""
    capacity = 8
    schedules = {b: Schedule(capacity, backend=b) for b in BACKENDS}
    schedulers = {b: GreedyScheduler(s) for b, s in schedules.items()}
    committed: dict[str, list] = {b: [] for b in BACKENDS}
    ref = schedules["scalar"]
    for _ in range(data.draw(st.integers(min_value=2, max_value=10))):
        if committed["scalar"] and data.draw(st.booleans()):
            idx = data.draw(
                st.integers(min_value=0, max_value=len(committed["scalar"]) - 1)
            )
            for b in BACKENDS:
                schedules[b].rollback(committed[b].pop(idx))
        else:
            chain = data.draw(task_chains(max_procs=capacity))
            release = data.draw(nice_times)
            cps = {
                b: sched.place_chain(chain, release)
                for b, sched in schedulers.items()
            }
            shapes = {
                b: None
                if cp is None
                else tuple((p.start, p.end, p.processors) for p in cp)
                for b, cp in cps.items()
            }
            assert len(set(shapes.values())) == 1, shapes
            if cps["scalar"] is None:
                continue
            for b in BACKENDS:
                schedules[b].commit(cps[b])
                committed[b].append(cps[b])
        for b in BACKENDS:
            assert schedules[b].profile._times == ref.profile._times
            assert schedules[b].profile._avail == ref.profile._avail
            assert schedules[b].committed_area == ref.committed_area
            assert schedules[b].utilization() == ref.utilization()
    for b in BACKENDS:
        # Touch the tree so check_invariants exercises check_against too.
        schedules[b].profile.min_available(0.0, 1.0)
        schedules[b].profile.check_invariants()
        schedules[b].check_consistency()
