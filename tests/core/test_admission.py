"""Unit tests for admission control."""

import pytest

from repro.core.admission import AdmissionController
from repro.core.greedy import GreedyScheduler
from repro.core.resources import ProcessorTimeRequest
from repro.core.schedule import Schedule
from repro.model.chain import TaskChain
from repro.model.job import Job
from repro.model.task import TaskSpec


def job(procs=2, dur=5.0, deadline=20.0, release=0.0):
    chain = TaskChain(
        (TaskSpec("t", ProcessorTimeRequest(procs, dur), deadline=deadline),)
    )
    return Job.rigid(chain, release=release)


def make_controller(capacity=4, compact=True):
    schedule = Schedule(capacity)
    return AdmissionController(GreedyScheduler(schedule), compact=compact)


class TestOffer:
    def test_admit(self):
        ctl = make_controller()
        decision = ctl.offer(job())
        assert decision.admitted
        assert decision.placement is not None
        assert decision.chain_index == 0
        assert decision.finish == 5.0
        assert ctl.admitted == 1
        assert ctl.rejected == 0
        assert ctl.offered == 1

    def test_reject(self):
        ctl = make_controller(capacity=1)
        ctl.offer(job(procs=1, dur=30.0, deadline=100.0))
        decision = ctl.offer(job(procs=1, dur=5.0, deadline=10.0))
        assert not decision.admitted
        assert decision.placement is None
        assert decision.chain_index is None
        assert decision.finish is None
        assert "no schedulable" in decision.reason
        assert ctl.rejected == 1

    def test_decisions_by_chain(self):
        ctl = make_controller()
        for _ in range(3):
            ctl.offer(job(dur=1.0, deadline=1000.0))
        assert ctl.decisions_by_chain == {0: 3}

    def test_compaction_advances_origin(self):
        ctl = make_controller(compact=True)
        ctl.offer(job(release=0.0, deadline=1000.0))
        ctl.offer(job(release=50.0, deadline=1000.0))
        assert ctl.scheduler.schedule.profile.origin == 50.0

    def test_no_compaction_when_disabled(self):
        ctl = make_controller(compact=False)
        ctl.offer(job(release=0.0, deadline=1000.0))
        ctl.offer(job(release=50.0, deadline=1000.0))
        assert ctl.scheduler.schedule.profile.origin == 0.0

    def test_rejected_job_leaves_schedule_untouched(self):
        ctl = make_controller(capacity=2)
        ctl.offer(job(procs=2, dur=10.0, deadline=100.0))
        snapshot = ctl.scheduler.schedule.profile.copy()
        ctl.offer(job(procs=2, dur=5.0, deadline=5.0))
        assert ctl.scheduler.schedule.profile == snapshot
