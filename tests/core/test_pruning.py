"""Tests for candidate-search pruning: counters, area reject, identity.

Pruning is a pure performance optimisation — every test here asserts
both that the pruned search does strictly less work (the perf counters)
and that it reaches the *same decision* as the exhaustive search it
replaced (the ``prune=False`` oracle).
"""

from dataclasses import replace

import pytest

from repro.core.arbitrator import ArbitrationObjective, QoSArbitrator
from repro.core.resources import ProcessorTimeRequest
from repro.model.chain import TaskChain
from repro.model.job import Job
from repro.model.task import TaskSpec
from repro.workloads.sweep import SweepConfig, run_point

COUNTERS = (
    "chains_probed",
    "chains_quick_rejected",
    "chains_area_rejected",
    "chains_pruned_dominated",
    "chains_pruned_quality",
)


def chain(procs, dur, deadline, quality=1.0, label=""):
    return TaskChain(
        (
            TaskSpec(
                "t",
                ProcessorTimeRequest(procs, dur),
                deadline=deadline,
                quality=quality,
            ),
        ),
        label=label,
    )


class TestPerfSnapshot:
    def test_counters_present_even_before_any_submit(self):
        snap = QoSArbitrator(4).perf_snapshot()
        for name in COUNTERS:
            assert snap[name] == 0

    def test_probes_counted(self):
        arb = QoSArbitrator(4)
        arb.submit(Job.rigid(chain(2, 2.0, 100.0)))
        assert arb.perf_snapshot()["chains_probed"] == 1


class TestAreaReject:
    def test_area_reject_fires_and_decision_survives(self):
        """A chain whose deadline window lacks free area dies in O(log S).

        Capacity 4 with 3 CPUs reserved until t=95 leaves 1 free CPU.  The
        doomed path needs 20 processor-time inside [0, 12] where only 12
        is free — rejected by the area bound without a first-fit walk.
        The narrow path (1 CPU x 5) still fits, so the job is admitted.
        """
        arb = QoSArbitrator(4)
        arb.schedule.profile.reserve(0.0, 95.0, 3)
        doomed = chain(2, 10.0, 12.0, label="doomed")
        narrow = chain(1, 5.0, 50.0, label="narrow")
        decision = arb.submit(Job.tunable_of([doomed, narrow]))
        assert decision.admitted
        assert decision.placement.chain.label == "narrow"
        snap = arb.perf_snapshot()
        assert snap["chains_area_rejected"] == 1
        assert snap["chains_quick_rejected"] == 0


class TestDominancePruning:
    def test_duplicate_chains_probed_once(self):
        dup = chain(2, 4.0, 100.0)
        job = Job.tunable_of([dup, dup, dup])
        pruned = QoSArbitrator(8)
        exhaustive = QoSArbitrator(8, prune=False)
        d1, d2 = pruned.submit(job), exhaustive.submit(job)
        assert (d1.admitted, d1.chain_index) == (d2.admitted, d2.chain_index)
        assert pruned.perf_snapshot()["chains_probed"] == 1
        assert pruned.perf_snapshot()["chains_pruned_dominated"] == 2
        assert exhaustive.perf_snapshot()["chains_probed"] == 3
        assert exhaustive.perf_snapshot()["chains_pruned_dominated"] == 0

    def test_pointwise_harder_chain_skipped_after_failure(self):
        """A failed probe prunes every later chain that is pointwise harder.

        Only [0, 2) has >= 2 free CPUs, so a 2x3 task cannot fit by t=8
        (but the window holds plenty of area, so the *area* bound passes
        and the first-fit walk genuinely fails).  The second path asks for
        more CPUs, for longer, by an earlier deadline — dominated.  The
        third, narrow path keeps the job admissible.
        """
        arb = QoSArbitrator(4)
        arb.schedule.profile.reserve(2.0, 100.0, 3)
        failing = chain(2, 3.0, 8.0, label="failing")
        harder = chain(3, 3.0, 7.0, label="harder")
        narrow = chain(1, 3.0, 50.0, label="narrow")
        job = Job.tunable_of([failing, harder, narrow])
        decision = arb.submit(job)
        assert decision.admitted
        assert decision.placement.chain.label == "narrow"
        snap = arb.perf_snapshot()
        assert snap["chains_pruned_dominated"] == 1
        assert snap["chains_probed"] == 2  # failing + narrow; harder skipped
        oracle = QoSArbitrator(4, prune=False)
        oracle.schedule.profile.reserve(2.0, 100.0, 3)
        d2 = oracle.submit(job)
        assert (decision.admitted, decision.chain_index) == (
            d2.admitted,
            d2.chain_index,
        )
        assert oracle.perf_snapshot()["chains_probed"] == 3


class TestMaxQualityShortCircuit:
    def test_lower_quality_tail_not_probed(self):
        """Once the best quality tier admits, lower tiers are skipped."""
        job = Job.tunable_of(
            [
                chain(4, 2.0, 100.0, quality=0.6, label="fast"),
                chain(2, 8.0, 100.0, quality=1.0, label="slow"),
            ]
        )
        pruned = QoSArbitrator(4, objective=ArbitrationObjective.MAX_QUALITY)
        exhaustive = QoSArbitrator(
            4, objective=ArbitrationObjective.MAX_QUALITY, prune=False
        )
        d1, d2 = pruned.submit(job), exhaustive.submit(job)
        assert d1.admitted and d2.admitted
        assert d1.chain_index == d2.chain_index
        assert d1.placement.chain.label == "slow"
        assert pruned.perf_snapshot()["chains_pruned_quality"] == 1
        assert pruned.perf_snapshot()["chains_probed"] == 1
        assert exhaustive.perf_snapshot()["chains_probed"] == 2

    def test_falls_through_to_lower_tier(self):
        """When the top tier is infeasible the next tier is still reached."""
        arb = QoSArbitrator(4, objective=ArbitrationObjective.MAX_QUALITY)
        arb.schedule.profile.reserve(0.0, 97.0, 3)
        job = Job.tunable_of(
            [
                chain(4, 2.0, 100.0, quality=0.6, label="fast"),
                chain(2, 8.0, 100.0, quality=1.0, label="slow"),
            ]
        )
        decision = arb.submit(job)
        assert decision.admitted
        assert decision.placement.chain.label == "fast"
        assert arb.perf_snapshot()["chains_pruned_quality"] == 0


@pytest.mark.parametrize(
    "axis,value",
    [("interval", 20.0), ("interval", 35.0), ("alpha", 1.0), ("laxity", 0.5)],
)
@pytest.mark.parametrize("system", ["tunable", "shape2"])
def test_sweep_decisions_identical_with_and_without_pruning(axis, value, system):
    """Fig. 5/6 points: pruning changes the work done, never the answer.

    ``RunMetrics.perf`` is excluded from equality, so ``==`` compares the
    actual simulation outcome (admissions, response times, utilization).
    The alpha=1.0 point makes the tunable job's chains identical, which is
    exactly the duplicate-collapse case.
    """
    base = SweepConfig(n_jobs=150).with_axis(axis, value)
    on = run_point(base, system)
    off = run_point(replace(base, prune=False), system)
    assert on == off
    if system == "tunable" and axis == "alpha":
        assert on.perf["chains_pruned_dominated"] > 0
    assert on.perf["chains_probed"] <= off.perf["chains_probed"]


def test_malleable_sweep_identical_with_and_without_pruning():
    base = SweepConfig(n_jobs=120, malleable=True)
    on = run_point(base, "tunable")
    off = run_point(replace(base, prune=False), "tunable")
    assert on == off
