"""Unit tests for the availability profile."""

import math

import pytest

from repro.core.profile import AvailabilityProfile
from repro.errors import CapacityExceededError, ConfigurationError, SchedulingError


class TestConstruction:
    def test_fresh_profile_fully_available(self):
        p = AvailabilityProfile(4)
        assert p.capacity == 4
        assert p.available_at(0) == 4
        assert p.available_at(1e9) == 4

    def test_origin(self):
        p = AvailabilityProfile(2, origin=5.0)
        assert p.origin == 5.0
        assert p.available_at(5.0) == 2

    def test_query_before_origin_rejected(self):
        p = AvailabilityProfile(2, origin=5.0)
        with pytest.raises(SchedulingError):
            p.available_at(4.0)

    def test_invalid_capacity(self):
        for cap in (0, -1, 2.5, True):
            with pytest.raises(ConfigurationError):
                AvailabilityProfile(cap)  # type: ignore[arg-type]

    def test_invalid_origin(self):
        with pytest.raises(ConfigurationError):
            AvailabilityProfile(2, origin=math.inf)

    def test_from_segments(self):
        p = AvailabilityProfile.from_segments(4, [(0.0, 4), (5.0, 1), (10.0, 3)])
        assert p.available_at(2) == 4
        assert p.available_at(5) == 1
        assert p.available_at(12) == 3
        p.check_invariants()

    def test_from_segments_canonicalizes(self):
        p = AvailabilityProfile.from_segments(4, [(0.0, 2), (5.0, 2), (10.0, 3)])
        assert len(p) == 2  # the equal 2,2 segments merge

    def test_from_segments_rejects_disorder(self):
        with pytest.raises(ConfigurationError):
            AvailabilityProfile.from_segments(4, [(5.0, 1), (0.0, 2)])

    def test_from_segments_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            AvailabilityProfile.from_segments(4, [(0.0, 5)])


class TestReserve:
    def test_basic_reserve(self):
        p = AvailabilityProfile(4)
        p.reserve(2.0, 6.0, 3)
        assert p.available_at(0) == 4
        assert p.available_at(2) == 1
        assert p.available_at(5.999) == 1
        assert p.available_at(6) == 4
        p.check_invariants()

    def test_nested_reserves(self):
        p = AvailabilityProfile(4)
        p.reserve(0.0, 10.0, 1)
        p.reserve(2.0, 4.0, 2)
        assert p.available_at(1) == 3
        assert p.available_at(3) == 1
        assert p.available_at(5) == 3
        p.check_invariants()

    def test_overcommit_rejected_and_profile_unchanged(self):
        p = AvailabilityProfile(4)
        p.reserve(0.0, 10.0, 3)
        snapshot = p.copy()
        with pytest.raises(CapacityExceededError):
            p.reserve(5.0, 15.0, 2)
        assert p == snapshot

    def test_exact_fill(self):
        p = AvailabilityProfile(4)
        p.reserve(0.0, 5.0, 4)
        assert p.available_at(2) == 0
        with pytest.raises(CapacityExceededError):
            p.reserve(4.0, 6.0, 1)

    def test_zero_length_interval_rejected(self):
        p = AvailabilityProfile(4)
        with pytest.raises(SchedulingError):
            p.reserve(1.0, 1.0, 1)

    def test_inverted_interval_rejected(self):
        p = AvailabilityProfile(4)
        with pytest.raises(SchedulingError):
            p.reserve(2.0, 1.0, 1)

    def test_infinite_end_rejected(self):
        p = AvailabilityProfile(4)
        with pytest.raises(SchedulingError):
            p.reserve(0.0, math.inf, 1)

    def test_nonpositive_processors_rejected(self):
        p = AvailabilityProfile(4)
        with pytest.raises(SchedulingError):
            p.reserve(0.0, 1.0, 0)

    def test_release_roundtrip(self):
        p = AvailabilityProfile(4)
        fresh = p.copy()
        p.reserve(1.0, 9.0, 2)
        p.reserve(3.0, 5.0, 1)
        p.release(3.0, 5.0, 1)
        p.release(1.0, 9.0, 2)
        assert p == fresh
        p.check_invariants()

    def test_release_beyond_capacity_rejected(self):
        p = AvailabilityProfile(4)
        with pytest.raises(CapacityExceededError):
            p.release(0.0, 1.0, 1)


class TestQueries:
    def test_min_available(self):
        p = AvailabilityProfile(4)
        p.reserve(2.0, 4.0, 3)
        assert p.min_available(0.0, 2.0) == 4
        assert p.min_available(0.0, 3.0) == 1
        assert p.min_available(2.0, 4.0) == 1
        assert p.min_available(4.0, 10.0) == 4

    def test_min_available_right_open(self):
        p = AvailabilityProfile(4)
        p.reserve(2.0, 4.0, 3)
        # [0, 2) excludes the reservation entirely.
        assert p.min_available(0.0, 2.0) == 4

    def test_min_available_degenerate(self):
        p = AvailabilityProfile(4)
        p.reserve(2.0, 4.0, 1)
        assert p.min_available(3.0, 3.0) == 3

    def test_free_area(self):
        p = AvailabilityProfile(4)
        p.reserve(2.0, 6.0, 3)
        assert p.free_area(0.0, 8.0) == pytest.approx(2 * 4 + 4 * 1 + 2 * 4)

    def test_free_area_empty_window(self):
        p = AvailabilityProfile(4)
        assert p.free_area(5.0, 5.0) == 0.0
        assert p.free_area(5.0, 3.0) == 0.0

    def test_free_area_requires_finite_bound(self):
        p = AvailabilityProfile(4)
        with pytest.raises(SchedulingError):
            p.free_area(0.0, math.inf)

    def test_busy_area(self):
        p = AvailabilityProfile(4)
        p.reserve(0.0, 10.0, 1)
        assert p.busy_area(0.0, 10.0) == pytest.approx(10.0)
        assert p.busy_area(0.0, 20.0) == pytest.approx(10.0)

    def test_segments_iteration(self):
        p = AvailabilityProfile(4)
        p.reserve(2.0, 4.0, 2)
        segs = list(p.segments())
        assert segs[0] == (0.0, 2.0, 4)
        assert segs[1] == (2.0, 4.0, 2)
        assert segs[-1][1] == math.inf


class TestCompact:
    def test_compact_drops_history(self):
        p = AvailabilityProfile(4)
        p.reserve(0.0, 2.0, 1)
        p.reserve(4.0, 8.0, 2)
        p.compact(5.0)
        assert p.origin == 5.0
        assert p.available_at(5.0) == 2
        assert p.available_at(8.0) == 4
        p.check_invariants()

    def test_compact_noop_before_origin(self):
        p = AvailabilityProfile(4)
        p.reserve(1.0, 2.0, 1)
        before = p.copy()
        p.compact(0.0)
        assert p == before

    def test_compact_preserves_future_availability(self):
        p = AvailabilityProfile(4)
        p.reserve(0.0, 10.0, 1)
        p.reserve(5.0, 15.0, 2)
        q = p.copy()
        p.compact(7.0)
        for t in (7.0, 9.0, 12.0, 20.0):
            assert p.available_at(t) == q.available_at(t)

    def test_compact_at_breakpoint(self):
        p = AvailabilityProfile(4)
        p.reserve(2.0, 4.0, 1)
        p.compact(4.0)
        assert p.origin == 4.0
        assert p.available_at(4.0) == 4


class TestDunder:
    def test_copy_independent(self):
        p = AvailabilityProfile(4)
        q = p.copy()
        q.reserve(0.0, 1.0, 1)
        assert p.available_at(0.5) == 4

    def test_eq_other_type(self):
        assert AvailabilityProfile(2).__eq__(42) is NotImplemented

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(AvailabilityProfile(2))

    def test_repr_contains_capacity(self):
        assert "capacity=3" in repr(AvailabilityProfile(3))
