"""Regression: the ``"auto"`` back-end resolver tracks the measured data.

The original heuristic flipped to the vectorized scan at 64 segments —
but the committed fragmentation benchmark (``BENCH_sched.json``) shows
the vector scan's fixed per-probe numpy overhead keeps it *behind* the
scalar walk at both 100 and 1000 live segments, winning only by 10000.
``"auto"`` picking the slowest scan on committed measurement points is
exactly the bug this file pins closed: at every committed fragmentation
point, the back-end :func:`resolve_auto_backend` selects must not be the
worst-measured one.

Since PR 9 the resolver also considers the compiled C kernel: the
committed serial decision-throughput data shows the kernel path loses to
pure Python at 100 live segments (fixed ctypes marshalling cost) but
wins by 1000, so ``"auto"`` routes to ``"kernel"`` from
``KERNEL_MIN_SEGMENTS`` up — *only* when the compiled library actually
loaded (``kernel_compiled``); with the numpy fallback active the kernel
path is just a slower vector scan, so the resolver falls back to the
scalar/vector split.

The tests read the committed benchmark report, so regenerating
``BENCH_sched.json`` on a machine with a different crossover will flag
the heuristic for re-tuning rather than silently shipping a bad
default.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core import kernels
from repro.core.profile import (
    AvailabilityProfile,
    KERNEL_MIN_SEGMENTS,
    VECTOR_MIN_SEGMENTS,
    resolve_auto_backend,
)

_BENCH = Path(__file__).resolve().parents[2] / "BENCH_sched.json"


def _report():
    if not _BENCH.exists():  # fresh checkout before any bench run
        pytest.skip("no committed BENCH_sched.json")
    return json.loads(_BENCH.read_text())


def _fragmentation_points():
    return _report()["fragmentation"]["points"]


def test_auto_is_never_the_worst_backend_on_committed_points():
    for point in _fragmentation_points():
        segments = point["segments"]
        for compiled, pool in ((False, ("scalar", "vector")),
                               (True, ("scalar", "vector", "kernel"))):
            p50 = {
                name: data["p50_us"]
                for name, data in point["backends"].items()
                if name in pool
            }
            choice = resolve_auto_backend(segments, kernel_compiled=compiled)
            worst = max(p50, key=p50.get)
            assert choice in p50
            assert choice != worst or len(set(p50.values())) == 1, (
                f"auto (kernel_compiled={compiled}) resolves to {choice} at "
                f"{segments} segments but the committed p50s are {p50} — "
                f"re-tune VECTOR_MIN_SEGMENTS/KERNEL_MIN_SEGMENTS"
            )


def test_crossover_is_between_committed_loss_and_win_points():
    """2048 sits strictly inside the (1000, 10000) bracket the committed
    data establishes: vector loses at 1000 and wins at 10000."""
    points = {p["segments"]: p for p in _fragmentation_points()}
    losses = [
        s for s, p in points.items()
        if p["backends"]["vector"]["p50_us"] > p["backends"]["scalar"]["p50_us"]
    ]
    wins = [
        s for s, p in points.items()
        if p["backends"]["vector"]["p50_us"] < p["backends"]["scalar"]["p50_us"]
    ]
    if losses:
        assert VECTOR_MIN_SEGMENTS > max(losses)
    if wins:
        assert VECTOR_MIN_SEGMENTS <= min(wins)


def test_kernel_crossover_is_between_committed_throughput_points():
    """KERNEL_MIN_SEGMENTS sits inside the bracket the committed serial
    decision-throughput data establishes: the compiled kernel loses to
    pure Python at the backlog size where ``serial-python`` out-ran
    ``serial-kernel`` and wins where the order flips."""
    report = _report()
    throughput = report.get("decision_throughput")
    if not throughput:
        pytest.skip("no committed decision_throughput section")
    losses, wins = [], []
    for point in throughput["points"]:
        modes = point["modes"]
        if "serial-python" not in modes or "serial-kernel" not in modes:
            continue
        python_rate = modes["serial-python"]["decisions_per_sec"]
        kernel_rate = modes["serial-kernel"]["decisions_per_sec"]
        if kernel_rate < python_rate:
            losses.append(point["segments"])
        else:
            wins.append(point["segments"])
    if losses:
        assert KERNEL_MIN_SEGMENTS > max(
            s for s in losses if not wins or s < min(wins)
        )
    if wins:
        assert KERNEL_MIN_SEGMENTS <= min(wins)


def test_resolver_thresholds():
    # Without the compiled kernel: the original scalar/vector split.
    assert resolve_auto_backend(0, kernel_compiled=False) == "scalar"
    assert (
        resolve_auto_backend(VECTOR_MIN_SEGMENTS - 1, kernel_compiled=False)
        == "scalar"
    )
    assert (
        resolve_auto_backend(VECTOR_MIN_SEGMENTS, kernel_compiled=False)
        == "vector"
    )
    assert (
        resolve_auto_backend(10 * VECTOR_MIN_SEGMENTS, kernel_compiled=False)
        == "vector"
    )
    # With the compiled kernel loaded: kernel from KERNEL_MIN_SEGMENTS up.
    assert resolve_auto_backend(0, kernel_compiled=True) == "scalar"
    assert (
        resolve_auto_backend(KERNEL_MIN_SEGMENTS - 1, kernel_compiled=True)
        == "scalar"
    )
    assert (
        resolve_auto_backend(KERNEL_MIN_SEGMENTS, kernel_compiled=True)
        == "kernel"
    )
    assert (
        resolve_auto_backend(10 * VECTOR_MIN_SEGMENTS, kernel_compiled=True)
        == "kernel"
    )
    # The kernel threshold lives below the vector one: by the time the
    # vector scan starts paying for itself the kernel already wins.
    assert KERNEL_MIN_SEGMENTS < VECTOR_MIN_SEGMENTS


def test_resolver_default_asks_kernel_layer():
    compiled = kernels.kernel_backend() == "compiled"
    assert resolve_auto_backend(VECTOR_MIN_SEGMENTS) == resolve_auto_backend(
        VECTOR_MIN_SEGMENTS, kernel_compiled=compiled
    )


def test_profile_scan_backend_follows_resolver():
    profile = AvailabilityProfile(4)
    assert profile.scan_backend() == resolve_auto_backend(1) == "scalar"
    for i in range(VECTOR_MIN_SEGMENTS + 1):
        profile.reserve(2.0 * i, 2.0 * i + 1.0, 1)
    # Above both thresholds "auto" resolves to kernel when compiled,
    # vector otherwise — the profile must agree with the resolver either
    # way.
    assert profile.scan_backend() == resolve_auto_backend(len(profile))
    assert profile.scan_backend() in ("vector", "kernel")
