"""Regression: the ``"auto"`` back-end resolver tracks the measured data.

The original heuristic flipped to the vectorized scan at 64 segments —
but the committed fragmentation benchmark (``BENCH_sched.json``) shows
the vector scan's fixed per-probe numpy overhead keeps it *behind* the
scalar walk at both 100 and 1000 live segments, winning only by 10000.
``"auto"`` picking the slowest scan on committed measurement points is
exactly the bug this file pins closed: at every committed fragmentation
point, the back-end :func:`resolve_auto_backend` selects must not be the
worst-measured one.

The test reads the committed benchmark report, so regenerating
``BENCH_sched.json`` on a machine with a different crossover will flag
the heuristic for re-tuning rather than silently shipping a bad
default.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.profile import (
    AvailabilityProfile,
    VECTOR_MIN_SEGMENTS,
    resolve_auto_backend,
)

_BENCH = Path(__file__).resolve().parents[2] / "BENCH_sched.json"


def _fragmentation_points():
    if not _BENCH.exists():  # fresh checkout before any bench run
        pytest.skip("no committed BENCH_sched.json")
    report = json.loads(_BENCH.read_text())
    return report["fragmentation"]["points"]


def test_auto_is_never_the_worst_backend_on_committed_points():
    for point in _fragmentation_points():
        segments = point["segments"]
        p50 = {
            name: data["p50_us"]
            for name, data in point["backends"].items()
            if name in ("scalar", "vector")  # the pool auto picks from
        }
        choice = resolve_auto_backend(segments)
        worst = max(p50, key=p50.get)
        assert choice in p50
        assert choice != worst or len(set(p50.values())) == 1, (
            f"auto resolves to {choice} at {segments} segments but the "
            f"committed p50s are {p50} — re-tune VECTOR_MIN_SEGMENTS"
        )


def test_crossover_is_between_committed_loss_and_win_points():
    """2048 sits strictly inside the (1000, 10000) bracket the committed
    data establishes: vector loses at 1000 and wins at 10000."""
    points = {p["segments"]: p for p in _fragmentation_points()}
    losses = [
        s for s, p in points.items()
        if p["backends"]["vector"]["p50_us"] > p["backends"]["scalar"]["p50_us"]
    ]
    wins = [
        s for s, p in points.items()
        if p["backends"]["vector"]["p50_us"] < p["backends"]["scalar"]["p50_us"]
    ]
    if losses:
        assert VECTOR_MIN_SEGMENTS > max(losses)
    if wins:
        assert VECTOR_MIN_SEGMENTS <= min(wins)


def test_resolver_thresholds():
    assert resolve_auto_backend(0) == "scalar"
    assert resolve_auto_backend(VECTOR_MIN_SEGMENTS - 1) == "scalar"
    assert resolve_auto_backend(VECTOR_MIN_SEGMENTS) == "vector"
    assert resolve_auto_backend(10 * VECTOR_MIN_SEGMENTS) == "vector"


def test_profile_scan_backend_follows_resolver():
    profile = AvailabilityProfile(4)
    assert profile.scan_backend() == resolve_auto_backend(1) == "scalar"
    for i in range(VECTOR_MIN_SEGMENTS + 1):
        profile.reserve(2.0 * i, 2.0 * i + 1.0, 1)
    assert profile.scan_backend() == "vector"
