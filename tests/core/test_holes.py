"""Unit tests for maximal-hole enumeration."""

import math

import pytest

from repro.core.first_fit import earliest_fit
from repro.core.holes import (
    MaximalHole,
    first_fit_via_holes,
    holes_containing,
    maximal_holes,
)
from repro.core.profile import AvailabilityProfile
from repro.core.resources import TIME_EPS


class TestMaximalHole:
    def test_duration_and_area(self):
        h = MaximalHole(2.0, 6.0, 3)
        assert h.duration == 4.0
        assert h.area == 12.0

    def test_infinite_hole(self):
        h = MaximalHole(0.0, math.inf, 2)
        assert math.isinf(h.duration)
        assert math.isinf(h.area)

    def test_contains(self):
        big = MaximalHole(0.0, 10.0, 4)
        assert big.contains(MaximalHole(2.0, 8.0, 2))
        assert big.contains(big)
        assert not big.contains(MaximalHole(2.0, 12.0, 2))
        assert not big.contains(MaximalHole(2.0, 8.0, 5))

    def test_fits(self):
        h = MaximalHole(5.0, 15.0, 3)
        assert h.fits(3, 10.0)
        assert not h.fits(4, 1.0)
        assert not h.fits(1, 11.0)
        assert h.fits(1, 5.0, release=8.0)
        assert not h.fits(1, 8.0, release=8.0)
        assert not h.fits(1, 5.0, release=8.0, deadline=12.0)


class TestEnumeration:
    def test_fresh_profile_single_hole(self):
        p = AvailabilityProfile(4)
        holes = maximal_holes(p)
        assert holes == [MaximalHole(0.0, math.inf, 4)]

    def test_single_reservation(self):
        p = AvailabilityProfile(4)
        p.reserve(0.0, 10.0, 2)
        holes = maximal_holes(p, horizon=20.0)
        assert MaximalHole(0.0, 20.0, 2) in holes
        assert MaximalHole(10.0, 20.0, 4) in holes
        assert len(holes) == 2

    def test_staircase(self):
        p = AvailabilityProfile(4)
        p.reserve(0.0, 30.0, 1)  # avail 3 on [0,30)
        p.reserve(0.0, 20.0, 1)  # avail 2 on [0,20)
        p.reserve(0.0, 10.0, 1)  # avail 1 on [0,10)
        holes = maximal_holes(p, horizon=40.0)
        expected = {
            MaximalHole(0.0, 40.0, 1),
            MaximalHole(10.0, 40.0, 2),
            MaximalHole(20.0, 40.0, 3),
            MaximalHole(30.0, 40.0, 4),
        }
        assert set(holes) == expected

    def test_full_segment_creates_no_hole(self):
        p = AvailabilityProfile(2)
        p.reserve(5.0, 10.0, 2)
        holes = maximal_holes(p, horizon=20.0)
        assert all(not (h.t_b >= 5.0 and h.t_e <= 10.0) for h in holes)
        assert MaximalHole(0.0, 5.0, 2) in holes
        assert MaximalHole(10.0, 20.0, 2) in holes

    def test_no_nesting(self):
        p = AvailabilityProfile(6)
        p.reserve(0.0, 4.0, 3)
        p.reserve(8.0, 12.0, 5)
        p.reserve(2.0, 10.0, 1)
        holes = maximal_holes(p, horizon=30.0)
        for a in holes:
            for b in holes:
                assert a == b or not a.contains(b)

    def test_sorted_output(self):
        p = AvailabilityProfile(4)
        p.reserve(3.0, 7.0, 2)
        p.reserve(10.0, 11.0, 4)
        holes = maximal_holes(p, horizon=20.0)
        assert holes == sorted(holes)


class TestQueries:
    def test_holes_containing(self):
        p = AvailabilityProfile(4)
        p.reserve(0.0, 10.0, 2)
        holes = maximal_holes(p, horizon=20.0)
        at5 = holes_containing(holes, 5.0)
        assert all(h.t_b <= 5.0 < h.t_e for h in at5)
        assert holes_containing(holes, 5.0, processors=4) == []

    def test_first_fit_via_holes_matches_simple_case(self):
        p = AvailabilityProfile(4)
        p.reserve(0.0, 10.0, 3)
        holes = maximal_holes(p)
        assert first_fit_via_holes(holes, 2, 5.0, 0.0) == 10.0
        assert first_fit_via_holes(holes, 1, 5.0, 0.0) == 0.0
        assert first_fit_via_holes(holes, 2, 5.0, 0.0, deadline=8.0) is None
        assert first_fit_via_holes(holes, 5, 1.0, 0.0) is None


class TestEpsilonBoundaries:
    """Pin the shared TIME_EPS conventions (see the holes module docstring).

    Anything within TIME_EPS of a boundary is *at* the boundary: a task may
    overrun a hole's end (or its deadline) by at most TIME_EPS, and a query
    instant that close to a hole's right edge is already outside it.  The
    "within" cases below use TIME_EPS/2 and the "beyond" cases 3*TIME_EPS —
    exactly one epsilon sits on the knife edge of float rounding, which is
    precisely why the comparisons carry explicit slack.
    """

    @staticmethod
    def hole_profile():
        # Segments [0,10):4, [10,20):2, [20,inf):4 -- a height-4 hole
        # ending exactly at t=10.
        p = AvailabilityProfile(4)
        p.reserve(10.0, 20.0, 2)
        return p

    def test_fits_at_hole_end(self):
        h = MaximalHole(0.0, 10.0, 4)
        assert h.fits(3, 10.0)  # finish lands exactly on t_e
        assert h.fits(3, 10.0 + TIME_EPS / 2)  # within eps beyond the edge
        assert not h.fits(3, 10.0 + 3 * TIME_EPS)  # clearly beyond

    def test_earliest_fit_at_hole_end(self):
        p = self.hole_profile()
        assert earliest_fit(p, 3, 10.0, 0.0) == 0.0
        assert earliest_fit(p, 3, 10.0 + TIME_EPS / 2, 0.0) == 0.0
        # Clearly past the edge: the placement slides to the next hole.
        assert earliest_fit(p, 3, 10.0 + 3 * TIME_EPS, 0.0) == 20.0

    def test_oracle_and_search_agree_at_the_edge(self):
        p = self.hole_profile()
        holes = maximal_holes(p)
        for duration in (10.0, 10.0 + TIME_EPS / 2, 10.0 + 3 * TIME_EPS):
            assert first_fit_via_holes(holes, 3, duration, 0.0) == earliest_fit(
                p, 3, duration, 0.0
            )

    def test_deadline_at_hole_end(self):
        p = self.hole_profile()
        assert earliest_fit(p, 3, 10.0, 0.0, deadline=10.0) == 0.0
        # Deadline within eps *before* the finish is still on time...
        assert earliest_fit(p, 3, 10.0, 0.0, deadline=10.0 - TIME_EPS / 2) == 0.0
        # ...but clearly before it is late, and no later start can help.
        assert earliest_fit(p, 3, 10.0, 0.0, deadline=10.0 - 3 * TIME_EPS) is None

    def test_holes_containing_right_edge(self):
        holes = [MaximalHole(0.0, 10.0, 4)]
        assert holes_containing(holes, 10.0) == []  # t_e itself (right-open)
        assert holes_containing(holes, 10.0 - TIME_EPS / 2) == []  # eps-close
        assert holes_containing(holes, 10.0 - 3 * TIME_EPS) == holes

    def test_holes_containing_left_edge(self):
        holes = [MaximalHole(0.0, 10.0, 4)]
        assert holes_containing(holes, 0.0) == holes  # t_b itself (inclusive)
        assert holes_containing(holes, -TIME_EPS / 2) == holes  # eps-below
        assert holes_containing(holes, -3 * TIME_EPS) == []
