"""``QoSArbitrator.admit_batch``: bit-identical replay of the serial loop.

The equivalence contract (see :mod:`repro.core.kernels.batch`): a batch
produces *exactly* the decisions, profile, and accounting the serial
``submit`` loop produces in arrival order — for every back-end, prune
mode, tie-break policy, kernel implementation, scheduler flavour, and
arbitration objective, including batches interrupted by a
capacity-fault schedule swap from :mod:`repro.resilience`.  Identity is
asserted on full observable state, not just the decision digests.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import kernels
from repro.core.arbitrator import ArbitrationObjective, QoSArbitrator
from repro.core.policies import TieBreakPolicy
from repro.core.schedule import Schedule
from repro.errors import ConfigurationError
from repro.model.quality import QualityComposition
from repro.resilience.events import CapacityEvent
from repro.verify.fuzz import (
    _RANDOM_POLICY_SEED,
    random_case,
    run_case,
    run_case_batch,
)


def _kernel_modes() -> tuple[str, ...]:
    try:
        with kernels.use("compiled"):
            return ("compiled", "python")
    except ConfigurationError:
        return ("python",)


KERNEL_MODES = _kernel_modes()


def _state(arbitrator: QoSArbitrator) -> tuple:
    profile = arbitrator.schedule.profile
    return (
        tuple(profile._times),  # noqa: SLF001 - identity, not API
        tuple(profile._avail),  # noqa: SLF001
        arbitrator.admitted,
        arbitrator.rejected,
        dict(arbitrator.admission.decisions_by_chain),
        arbitrator._quality_sum,  # noqa: SLF001
        arbitrator._quality_possible,  # noqa: SLF001
        arbitrator.utilization(),
    )


@pytest.mark.parametrize("kmode", KERNEL_MODES)
@pytest.mark.parametrize("backend", ("auto", "kernel"))
@pytest.mark.parametrize("prune", (True, False))
@pytest.mark.parametrize("policy", tuple(TieBreakPolicy))
def test_batch_identical_to_serial_across_matrix(kmode, backend, prune, policy):
    with kernels.use(kmode):
        for seed in range(8):
            case = random_case(random.Random(seed), malleable=(seed % 4 == 3))
            serial = run_case(
                case, backend=backend, prune=prune, policy=policy, audit=False
            )
            batch = run_case_batch(
                case, backend=backend, prune=prune, policy=policy, audit=False
            )
            assert batch == serial


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    malleable=st.booleans(),
    backend=st.sampled_from(("auto", "scalar", "vector", "tree", "kernel")),
    prune=st.booleans(),
    policy=st.sampled_from(tuple(TieBreakPolicy)),
    kmode=st.sampled_from(KERNEL_MODES),
)
@settings(max_examples=40, deadline=None)
def test_batch_identity_property(seed, malleable, backend, prune, policy, kmode):
    """Hypothesis sweep over the whole configuration space: any workload,
    any back-end × prune × tie-break × kernel, batch == serial."""
    with kernels.use(kmode):
        case = random_case(random.Random(seed), malleable=malleable)
        serial = run_case(
            case, backend=backend, prune=prune, policy=policy, audit=False
        )
        batch = run_case_batch(
            case, backend=backend, prune=prune, policy=policy, audit=False
        )
        assert batch == serial


@pytest.mark.parametrize("kmode", KERNEL_MODES)
def test_empty_batch_is_a_no_op(kmode):
    with kernels.use(kmode):
        arbitrator = QoSArbitrator(8)
        before = _state(arbitrator)
        assert arbitrator.admit_batch([]) == []
        assert _state(arbitrator) == before


@pytest.mark.parametrize("kmode", KERNEL_MODES)
def test_single_job_batch_matches_submit(kmode):
    with kernels.use(kmode):
        for seed in range(12):
            case = random_case(random.Random(seed))
            job = case.jobs[0]
            a = QoSArbitrator(case.capacity, seed=_RANDOM_POLICY_SEED)
            b = QoSArbitrator(case.capacity, seed=_RANDOM_POLICY_SEED)
            d_serial = a.submit(job)
            (d_batch,) = b.admit_batch([job])
            assert (d_batch.admitted, d_batch.chain_index) == (
                d_serial.admitted, d_serial.chain_index,
            )
            if d_serial.placement is not None:
                assert d_batch.placement.placements == (
                    d_serial.placement.placements
                )
            assert _state(a) == _state(b)


@pytest.mark.parametrize("kmode", KERNEL_MODES)
def test_batch_spanning_capacity_fault_event(kmode):
    """Admissions on either side of a resilience capacity fault agree.

    Mirrors what :class:`repro.resilience.driver.RenegotiationDriver`
    does at a :class:`CapacityEvent`: the arbitrator adopts a fresh,
    smaller schedule and subsequent admissions (batched or serial) probe
    the post-fault profile.
    """
    with kernels.use(kmode):
        for seed in range(6):
            case = random_case(random.Random(seed), max_jobs=8)
            event = CapacityEvent(time=0.0, new_capacity=max(2, case.capacity // 2))
            cut = len(case.jobs) // 2
            arbs = []
            for batched in (False, True):
                arbitrator = QoSArbitrator(
                    case.capacity, seed=_RANDOM_POLICY_SEED
                )

                def feed(jobs, *, batched=batched, arbitrator=arbitrator):
                    if batched:
                        arbitrator.admit_batch(list(jobs))
                    else:
                        for job in jobs:
                            arbitrator.submit(job)

                feed(case.jobs[:cut])
                arbitrator.adopt_schedule(
                    Schedule(event.new_capacity, origin=event.time)
                )
                feed(case.jobs[cut:])
                arbs.append(arbitrator)
            serial, batch = arbs
            assert _state(serial) == _state(batch)


@pytest.mark.parametrize("kmode", KERNEL_MODES)
def test_malleable_batch_falls_back_yet_matches(kmode):
    """MalleableScheduler never takes the compiled fast path, but the
    generic (pre-screened serial) batch path must still be identical."""
    with kernels.use(kmode):
        for seed in range(6):
            case = random_case(random.Random(seed), malleable=True)
            a = QoSArbitrator(
                case.capacity, malleable=True, seed=_RANDOM_POLICY_SEED
            )
            b = QoSArbitrator(
                case.capacity, malleable=True, seed=_RANDOM_POLICY_SEED
            )
            for job in case.jobs:
                a.submit(job)
            b.admit_batch(list(case.jobs))
            assert _state(a) == _state(b)


@pytest.mark.parametrize("kmode", KERNEL_MODES)
@pytest.mark.parametrize("comp", tuple(QualityComposition))
def test_max_quality_objective_batch_matches(kmode, comp):
    with kernels.use(kmode):
        for seed in range(5):
            case = random_case(random.Random(seed))
            a = QoSArbitrator(
                case.capacity,
                objective=ArbitrationObjective.MAX_QUALITY,
                quality_composition=comp,
                seed=_RANDOM_POLICY_SEED,
            )
            b = QoSArbitrator(
                case.capacity,
                objective=ArbitrationObjective.MAX_QUALITY,
                quality_composition=comp,
                seed=_RANDOM_POLICY_SEED,
            )
            for job in case.jobs:
                a.submit(job)
            b.admit_batch(list(case.jobs))
            assert _state(a) == _state(b)


@pytest.mark.skipif(
    KERNEL_MODES == ("python",), reason="compiled kernel unavailable"
)
def test_fast_path_taken_and_counted():
    """Eligible batches actually run the one-call C loop (no fallback)."""
    with kernels.use("compiled"):
        case = random_case(random.Random(1))
        arbitrator = QoSArbitrator(case.capacity, seed=_RANDOM_POLICY_SEED)
        arbitrator.admit_batch(list(case.jobs))
        snap = arbitrator.perf_snapshot()
        assert snap["kernel_backend"] == "compiled"
        assert snap["batch_jobs"] == len(case.jobs)
        assert snap["batch_fallbacks"] == 0


def test_random_policy_batch_uses_serial_replay():
    """RANDOM tie-breaks consume the Python RNG stream, so the batch path
    must fall back to the serial loop — and still match bit-for-bit."""
    for kmode in KERNEL_MODES:
        with kernels.use(kmode):
            case = random_case(random.Random(5))
            serial = run_case(
                case, policy=TieBreakPolicy.RANDOM, audit=False
            )
            batch = run_case_batch(
                case, policy=TieBreakPolicy.RANDOM, audit=False
            )
            assert batch == serial
