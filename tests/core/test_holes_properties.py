"""Property tests: holes are maximal, cover all placements, match first fit."""

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.core.first_fit import earliest_fit
from repro.core.holes import first_fit_via_holes, maximal_holes
from tests.conftest import loaded_profiles, nice_durations, nice_times


@given(loaded_profiles())
def test_holes_are_mutually_non_contained(profile):
    holes = maximal_holes(profile, horizon=100.0)
    for a in holes:
        for b in holes:
            assert a == b or not a.contains(b)


@given(loaded_profiles())
def test_hole_height_is_min_availability_over_extent(profile):
    for hole in maximal_holes(profile, horizon=100.0):
        end = min(hole.t_e, 100.0)
        assert profile.min_available(hole.t_b, end) == hole.m


@given(loaded_profiles())
def test_holes_are_time_maximal(profile):
    """Extending a hole slightly in either direction breaks availability."""
    for hole in maximal_holes(profile, horizon=100.0):
        if hole.t_b > profile.origin:
            assert profile.available_at(hole.t_b - 0.25) < hole.m
        if hole.t_e < 100.0:
            assert profile.available_at(hole.t_e) < hole.m


@given(loaded_profiles(), nice_times, nice_durations, st.integers(1, 8))
def test_every_feasible_rectangle_is_inside_some_hole(profile, start, duration, procs):
    """If (start, start+duration) x procs fits the profile, a maximal hole covers it."""
    end = start + duration
    if profile.min_available(start, end) < procs:
        return
    holes = maximal_holes(profile, horizon=end + 200.0)
    assert any(
        h.t_b <= start + 1e-9 and end <= h.t_e + 1e-9 and h.m >= procs
        for h in holes
    )


@given(loaded_profiles(), st.integers(1, 8), nice_durations, nice_times)
def test_first_fit_matches_hole_oracle(profile, procs, duration, release):
    """earliest_fit and the maximal-hole oracle agree everywhere."""
    fast = earliest_fit(profile, procs, duration, release)
    holes = maximal_holes(profile)  # infinite horizon: includes trailing holes
    oracle = first_fit_via_holes(holes, procs, duration, max(release, profile.origin))
    if procs > profile.capacity:
        assert fast is None
        return
    assert fast is not None and oracle is not None
    assert math.isclose(fast, oracle, abs_tol=1e-9)


@given(loaded_profiles(), st.integers(1, 8), nice_durations, nice_times, nice_durations)
def test_first_fit_matches_hole_oracle_with_deadline(
    profile, procs, duration, release, slack
):
    deadline = release + duration + slack
    fast = earliest_fit(profile, procs, duration, release, deadline)
    oracle = first_fit_via_holes(
        maximal_holes(profile), procs, duration, max(release, profile.origin), deadline
    )
    assert (fast is None) == (oracle is None)
    if fast is not None:
        assert math.isclose(fast, oracle, abs_tol=1e-9)
