"""Unit tests for repro.core.resources."""

import math

import pytest

from repro.core.resources import (
    TIME_EPS,
    ProcessorTimeRequest,
    time_eq,
    time_geq,
    time_leq,
    time_lt,
)
from repro.errors import InvalidTaskError


class TestTimeComparisons:
    def test_equal_values(self):
        assert time_eq(1.0, 1.0)

    def test_within_epsilon(self):
        assert time_eq(1.0, 1.0 + TIME_EPS / 2)

    def test_beyond_epsilon(self):
        assert not time_eq(1.0, 1.0 + 10 * TIME_EPS)

    def test_infinities_equal(self):
        assert time_eq(math.inf, math.inf)

    def test_leq_strict(self):
        assert time_leq(1.0, 2.0)
        assert not time_leq(2.0, 1.0)

    def test_leq_tolerant(self):
        assert time_leq(1.0 + TIME_EPS / 2, 1.0)

    def test_lt_requires_gap(self):
        assert time_lt(1.0, 2.0)
        assert not time_lt(1.0, 1.0 + TIME_EPS / 2)

    def test_geq(self):
        assert time_geq(2.0, 1.0)
        assert time_geq(1.0, 1.0 + TIME_EPS / 2)
        assert not time_geq(1.0, 2.0)


class TestProcessorTimeRequest:
    def test_basic_construction(self):
        req = ProcessorTimeRequest(4, 2.5)
        assert req.processors == 4
        assert req.duration == 2.5

    def test_area(self):
        assert ProcessorTimeRequest(4, 2.5).area == 10.0

    def test_zero_processors_rejected(self):
        with pytest.raises(InvalidTaskError):
            ProcessorTimeRequest(0, 1.0)

    def test_negative_processors_rejected(self):
        with pytest.raises(InvalidTaskError):
            ProcessorTimeRequest(-2, 1.0)

    def test_bool_processors_rejected(self):
        with pytest.raises(InvalidTaskError):
            ProcessorTimeRequest(True, 1.0)

    def test_float_processors_rejected(self):
        with pytest.raises(InvalidTaskError):
            ProcessorTimeRequest(2.0, 1.0)  # type: ignore[arg-type]

    def test_zero_duration_rejected(self):
        with pytest.raises(InvalidTaskError):
            ProcessorTimeRequest(1, 0.0)

    def test_infinite_duration_rejected(self):
        with pytest.raises(InvalidTaskError):
            ProcessorTimeRequest(1, math.inf)

    def test_nan_duration_rejected(self):
        with pytest.raises(InvalidTaskError):
            ProcessorTimeRequest(1, math.nan)

    def test_scaled_to_preserves_area(self):
        req = ProcessorTimeRequest(8, 3.0)
        for p in (1, 2, 4, 8, 16):
            scaled = req.scaled_to(p)
            assert scaled.processors == p
            assert scaled.area == pytest.approx(req.area)

    def test_scaled_to_invalid(self):
        with pytest.raises(InvalidTaskError):
            ProcessorTimeRequest(4, 1.0).scaled_to(0)

    def test_frozen(self):
        req = ProcessorTimeRequest(1, 1.0)
        with pytest.raises(AttributeError):
            req.processors = 2  # type: ignore[misc]

    def test_equality_and_hash(self):
        assert ProcessorTimeRequest(2, 3.0) == ProcessorTimeRequest(2, 3.0)
        assert hash(ProcessorTimeRequest(2, 3.0)) == hash(ProcessorTimeRequest(2, 3.0))
        assert ProcessorTimeRequest(2, 3.0) != ProcessorTimeRequest(3, 2.0)
