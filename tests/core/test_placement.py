"""Unit tests for placement records."""

import math

import pytest

from repro.core.placement import ChainPlacement, Placement
from repro.core.resources import ProcessorTimeRequest
from repro.errors import ScheduleConsistencyError
from repro.model.chain import TaskChain
from repro.model.task import TaskSpec


def make_chain():
    return TaskChain(
        (
            TaskSpec("a", ProcessorTimeRequest(2, 5.0), deadline=20.0),
            TaskSpec("b", ProcessorTimeRequest(1, 3.0), deadline=40.0),
        )
    )


class TestPlacement:
    def test_rigid_matches_request(self):
        t = TaskSpec("x", ProcessorTimeRequest(3, 4.0), deadline=10.0)
        pl = Placement.rigid(t, 2.0)
        assert pl.processors == 3
        assert pl.duration == 4.0
        assert pl.end == 6.0
        assert pl.area == 12.0

    def test_nonfinite_start_rejected(self):
        t = TaskSpec("x", ProcessorTimeRequest(1, 1.0), deadline=10.0)
        with pytest.raises(ScheduleConsistencyError):
            Placement(t, math.inf, 1, 1.0)
        with pytest.raises(ScheduleConsistencyError):
            Placement(t, math.nan, 1, 1.0)

    def test_nonpositive_extent_rejected(self):
        t = TaskSpec("x", ProcessorTimeRequest(1, 1.0), deadline=10.0)
        with pytest.raises(ScheduleConsistencyError):
            Placement(t, 0.0, 0, 1.0)
        with pytest.raises(ScheduleConsistencyError):
            Placement(t, 0.0, 1, 0.0)


class TestChainPlacement:
    def make(self, start_a=0.0, start_b=5.0, release=0.0):
        chain = make_chain()
        return ChainPlacement(
            job_id=1,
            chain_index=0,
            chain=chain,
            placements=(
                Placement.rigid(chain[0], start_a),
                Placement.rigid(chain[1], start_b),
            ),
            release=release,
        )

    def test_valid_placement(self):
        cp = self.make()
        cp.validate()
        assert cp.start == 0.0
        assert cp.finish == 8.0
        assert cp.response_time == 8.0
        assert cp.total_area == 2 * 5 + 1 * 3

    def test_gap_between_tasks_is_fine(self):
        cp = self.make(start_b=10.0)
        cp.validate()
        assert cp.finish == 13.0

    def test_precedence_violation(self):
        cp = self.make(start_a=3.0, start_b=5.0)  # a ends at 8 > b start 5
        with pytest.raises(ScheduleConsistencyError, match="predecessor"):
            cp.validate()

    def test_start_before_release(self):
        cp = self.make(release=1.0)  # a starts at 0 < release 1
        with pytest.raises(ScheduleConsistencyError):
            cp.validate()

    def test_deadline_violation(self):
        cp = self.make(start_a=16.0, start_b=21.0)  # a ends 21 > deadline 20
        with pytest.raises(ScheduleConsistencyError, match="deadline"):
            cp.validate()

    def test_deadline_relative_to_release(self):
        # Released at 10: a may finish by 30.
        cp = self.make(start_a=20.0, start_b=25.0, release=10.0)
        cp.validate()

    def test_placement_count_mismatch(self):
        chain = make_chain()
        with pytest.raises(ScheduleConsistencyError):
            ChainPlacement(
                job_id=1,
                chain_index=0,
                chain=chain,
                placements=(Placement.rigid(chain[0], 0.0),),
                release=0.0,
            )

    def test_iteration(self):
        cp = self.make()
        assert [pl.task.name for pl in cp] == ["a", "b"]
