"""Property-based tests for the availability profile (hypothesis)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.profile import AvailabilityProfile
from tests.conftest import loaded_profiles, nice_durations, nice_times, reservations


@given(loaded_profiles())
def test_invariants_always_hold(profile: AvailabilityProfile):
    profile.check_invariants()


@given(loaded_profiles())
def test_availability_bounded(profile: AvailabilityProfile):
    for start, _end, avail in profile.segments():
        assert 0 <= avail <= profile.capacity
        assert profile.available_at(start) == avail


@given(st.data())
def test_reserve_release_roundtrip(data):
    capacity = data.draw(st.integers(min_value=1, max_value=8))
    ops = data.draw(reservations(capacity))
    profile = AvailabilityProfile(capacity)
    fresh = profile.copy()
    for t0, t1, procs in ops:
        profile.reserve(t0, t1, procs)
    for t0, t1, procs in reversed(ops):
        profile.release(t0, t1, procs)
    assert profile == fresh


@given(st.data())
def test_release_order_irrelevant(data):
    capacity = data.draw(st.integers(min_value=1, max_value=6))
    ops = data.draw(reservations(capacity, max_ops=8))
    a = AvailabilityProfile(capacity)
    b = AvailabilityProfile(capacity)
    for t0, t1, procs in ops:
        a.reserve(t0, t1, procs)
        b.reserve(t0, t1, procs)
    for t0, t1, procs in ops:  # forward order on a
        a.release(t0, t1, procs)
    for t0, t1, procs in reversed(ops):  # reverse on b
        b.release(t0, t1, procs)
    assert a == b == AvailabilityProfile(capacity)


@given(loaded_profiles(), nice_times, nice_durations, nice_durations)
def test_free_area_additive(profile, t0, d1, d2):
    mid = t0 + d1
    t1 = mid + d2
    total = profile.free_area(t0, t1)
    parts = profile.free_area(t0, mid) + profile.free_area(mid, t1)
    assert total == pytest.approx(parts)


@given(loaded_profiles(), nice_times, nice_durations)
def test_min_available_is_pointwise_min(profile, t0, d):
    t1 = t0 + d
    lo = profile.min_available(t0, t1)
    # Sample availability at segment starts inside the window plus t0.
    samples = [profile.available_at(t0)]
    for start, _end, avail in profile.segments():
        if t0 < start < t1:
            samples.append(avail)
    assert lo == min(samples)


@given(loaded_profiles(), nice_times, nice_durations)
def test_busy_plus_free_equals_capacity_area(profile, t0, d):
    t1 = t0 + d
    total = profile.capacity * (t1 - t0)
    assert profile.busy_area(t0, t1) + profile.free_area(t0, t1) == pytest.approx(total)


@given(loaded_profiles(), nice_times)
def test_compact_preserves_future(profile, cut):
    reference = profile.copy()
    profile.compact(cut)
    profile.check_invariants()
    future_times = [cut, cut + 0.5, cut + 7.0, cut + 100.0]
    for start, _end, _a in reference.segments():
        if start >= cut:
            future_times.append(start)
    for t in future_times:
        assert profile.available_at(t) == reference.available_at(t)
