"""Unit and property tests for concrete processor assignment."""

import pytest
from hypothesis import given

from repro.core.assignment import assign_processors
from repro.core.greedy import GreedyScheduler
from repro.core.placement import ChainPlacement, Placement
from repro.core.resources import ProcessorTimeRequest
from repro.core.schedule import Schedule
from repro.errors import ScheduleConsistencyError
from repro.model.chain import TaskChain
from repro.model.task import TaskSpec
from repro.sim.rng import RandomStreams
from repro.workloads.synthetic import SyntheticParams
from tests.conftest import task_chains


def committed(job_specs, capacity=4):
    """Commit simple single-task placements: (job_id, start, procs, dur)."""
    s = Schedule(capacity)
    for job_id, start, procs, dur in job_specs:
        chain = TaskChain(
            (TaskSpec("t", ProcessorTimeRequest(procs, dur), deadline=1e6),)
        )
        s.commit(
            ChainPlacement(
                job_id=job_id,
                chain_index=0,
                chain=chain,
                placements=(Placement.rigid(chain[0], start),),
                release=min(start, 0.0) if start < 0 else 0.0,
            )
        )
    return s


class TestAssignment:
    def test_single_task(self):
        slices = assign_processors(committed([(1, 0.0, 2, 5.0)]))
        assert [(s.processor, s.start, s.end) for s in slices] == [
            (0, 0.0, 5.0),
            (1, 0.0, 5.0),
        ]

    def test_concurrent_tasks_disjoint_processors(self):
        slices = assign_processors(
            committed([(1, 0.0, 2, 5.0), (2, 0.0, 2, 5.0)])
        )
        by_job = {}
        for s in slices:
            by_job.setdefault(s.job_id, set()).add(s.processor)
        assert by_job[1].isdisjoint(by_job[2])
        assert by_job[1] | by_job[2] == {0, 1, 2, 3}

    def test_back_to_back_reuse(self):
        """Right-open intervals: a task ending at t frees processors for t."""
        slices = assign_processors(
            committed([(1, 0.0, 4, 5.0), (2, 5.0, 4, 5.0)])
        )
        first = {s.processor for s in slices if s.job_id == 1}
        second = {s.processor for s in slices if s.job_id == 2}
        assert first == second == {0, 1, 2, 3}

    def test_lowest_indices_first(self):
        slices = assign_processors(committed([(1, 0.0, 1, 2.0)]))
        assert slices[0].processor == 0

    def test_underflow_detected(self):
        """Manually corrupted placements (capacity bypass) raise."""
        s = Schedule(2)
        chain = TaskChain(
            (TaskSpec("t", ProcessorTimeRequest(2, 5.0), deadline=1e6),)
        )
        for job_id in (1, 2):  # 4 processors of demand on a 2-machine
            cp = ChainPlacement(
                job_id=job_id,
                chain_index=0,
                chain=chain,
                placements=(Placement.rigid(chain[0], 0.0),),
                release=0.0,
            )
            s._placements.append(cp)  # bypass commit's capacity enforcement
        with pytest.raises(ScheduleConsistencyError):
            assign_processors(s)

    def test_empty_schedule(self):
        assert assign_processors(Schedule(4)) == []


class TestAssignmentProperties:
    def _no_overlap(self, slices):
        by_proc = {}
        for s in slices:
            by_proc.setdefault(s.processor, []).append((s.start, s.end))
        for intervals in by_proc.values():
            intervals.sort()
            for (s1, e1), (s2, _e2) in zip(intervals, intervals[1:]):
                assert s2 >= e1 - 1e-9

    def test_no_overlap_on_synthetic_run(self):
        params = SyntheticParams(x=4, t=5.0, alpha=0.5, laxity=0.6)
        s = Schedule(8)
        g = GreedyScheduler(s)
        rng = RandomStreams(7).python("arr")
        t = 0.0
        for _ in range(30):
            t += rng.uniform(0.5, 6.0)
            g.schedule_job(params.tunable_job(release=t))
        slices = assign_processors(s)
        self._no_overlap(slices)
        # Every placement got exactly `procs` slices.
        per_task = {}
        for sl in slices:
            per_task[(sl.job_id, sl.task, sl.start)] = (
                per_task.get((sl.job_id, sl.task, sl.start), 0) + 1
            )
        for cp in s.placements:
            for pl in cp.placements:
                assert per_task[(cp.job_id, pl.task.name, pl.start)] == pl.processors

    @given(task_chains(max_len=3, max_procs=4))
    def test_any_feasible_chain_assignable(self, chain):
        s = Schedule(4)
        cp = GreedyScheduler(s).place_chain(chain, release=0.0)
        if cp is None:
            return
        s.commit(cp)
        slices = assign_processors(s)
        self._no_overlap(slices)
        assert len(slices) == sum(pl.processors for pl in cp.placements)
