"""Stale/corrupt kernel artifacts and the fallback-telemetry contract.

An interrupted build (truncated ``.so``) or an ABI stamp left behind by
an older checkout must self-heal with one clean ``::notice``-announced
rebuild — never a hard crash — and when even the rebuild cannot produce
a loadable object, ``REPRO_KERNEL=auto`` must fall back to the Python
kernels with honest ``kernel_fallbacks`` telemetry while
``REPRO_KERNEL=compiled`` (and the ``--check`` CLI) must fail loudly.
"""

from __future__ import annotations

import pytest

from repro.core import kernels
from repro.core.kernels import build, compiled
from repro.core.kernels.__main__ import main as kernels_main
from repro.errors import ConfigurationError


def _have_compiler() -> bool:
    return build.find_compiler() is not None


needs_compiler = pytest.mark.skipif(
    not _have_compiler(), reason="no C compiler available"
)


@pytest.fixture()
def scratch_lib(tmp_path, monkeypatch):
    """Point the kernel artifact at a scratch path and isolate the caches."""
    lib = tmp_path / "kernels.so"
    monkeypatch.setenv("REPRO_KERNEL_LIB", str(lib))
    monkeypatch.setattr(compiled, "_loaded", None)
    monkeypatch.setattr(kernels, "_active", None)
    monkeypatch.setattr(kernels, "_mode", None)
    return lib


@needs_compiler
def test_truncated_artifact_triggers_clean_rebuild(scratch_lib, capsys):
    path = build.ensure_built()
    blob = path.read_bytes()
    assert build.artifact_intact(path)
    path.write_bytes(blob[: len(blob) // 3])  # interrupted-build artifact
    # mtime is fresh, so the staleness check alone would accept the stub;
    # dlopen of it would SIGBUS — the structural check must catch it first.
    assert not build.artifact_intact(path)
    loaded = compiled.load()
    assert loaded.compiled and loaded.path == path
    assert path.read_bytes() == blob  # rebuilt bit-for-bit
    err = capsys.readouterr().err
    assert "::notice" in err and "rebuilding" in err


@needs_compiler
def test_abi_stamp_mismatch_rebuilds_once_then_fails_loud(
    scratch_lib, monkeypatch, capsys
):
    build.ensure_built()
    monkeypatch.setattr(compiled, "ABI_VERSION", 999)
    with pytest.raises(ConfigurationError, match="ABI"):
        compiled.load()
    err = capsys.readouterr().err
    assert "::notice" in err  # it did announce and attempt the rebuild


def test_unloadable_rebuild_normalizes_to_configuration_error(
    scratch_lib, monkeypatch, capsys
):
    scratch_lib.write_bytes(b"\x7fELF garbage, not a shared object")
    monkeypatch.setattr(
        compiled, "ensure_built", lambda force=False: scratch_lib
    )
    with pytest.raises(ConfigurationError, match="still fails to load"):
        compiled.load()
    assert "::notice" in capsys.readouterr().err

    # ...which is exactly what lets auto mode fall back with telemetry.
    before = kernels.stats.fallbacks
    assert kernels.set_kernel("auto") is not None
    assert kernels.kernel_backend() == "python"
    assert kernels.stats.fallbacks == before + 1
    assert "still fails to load" in kernels.stats.last_reason


def test_use_round_trips_backend_selection(scratch_lib, monkeypatch):
    monkeypatch.setattr(
        compiled,
        "load",
        lambda: (_ for _ in ()).throw(ConfigurationError("broken binding")),
    )
    kernels.set_kernel("python")
    assert kernels.kernel_backend() == "python"
    with kernels.use("python"):
        assert kernels.kernel_backend() == "python"
    # Restored to the pinned mode afterwards, not to the env default.
    assert kernels.kernel_backend() == "python"


def test_check_cli_exits_nonzero_on_broken_binding(
    scratch_lib, monkeypatch, capsys
):
    monkeypatch.setattr(
        compiled,
        "load",
        lambda: (_ for _ in ()).throw(ConfigurationError("broken binding")),
    )
    assert kernels_main(["--check"]) == 1
    assert "compiled kernel unavailable" in capsys.readouterr().err


@needs_compiler
def test_check_cli_exits_zero_when_compiled_loads(scratch_lib, capsys):
    assert kernels_main(["--check"]) == 0
    assert capsys.readouterr().err == ""


def test_forced_load_failure_increments_fallback_telemetry(
    scratch_lib, monkeypatch
):
    monkeypatch.setattr(
        compiled,
        "load",
        lambda: (_ for _ in ()).throw(ConfigurationError("forced failure")),
    )
    before = kernels.stats.fallbacks
    kernels.set_kernel("auto")
    assert kernels.kernel_backend() == "python"
    assert kernels.stats.fallbacks == before + 1
    assert kernels.stats.last_reason == "forced failure"
    with pytest.raises(ConfigurationError, match="REPRO_KERNEL=compiled"):
        kernels.set_kernel("compiled")
