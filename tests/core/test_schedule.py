"""Unit tests for the committed schedule."""

import pytest

from repro.core.placement import ChainPlacement, Placement
from repro.core.resources import ProcessorTimeRequest
from repro.core.schedule import Schedule
from repro.errors import CapacityExceededError, ScheduleConsistencyError
from repro.model.chain import TaskChain
from repro.model.task import TaskSpec


def chain_placement(job_id=1, start=0.0, procs=2, dur=5.0, release=0.0):
    chain = TaskChain(
        (TaskSpec("t", ProcessorTimeRequest(procs, dur), deadline=1000.0),)
    )
    return ChainPlacement(
        job_id=job_id,
        chain_index=0,
        chain=chain,
        placements=(Placement.rigid(chain[0], start),),
        release=release,
    )


class TestCommit:
    def test_commit_reserves(self):
        s = Schedule(4)
        s.commit(chain_placement(start=1.0))
        assert s.profile.available_at(3.0) == 2
        assert s.committed_jobs == 1
        assert s.committed_area == 10.0
        assert s.first_release == 0.0
        assert s.last_finish == 6.0

    def test_commit_validates(self):
        s = Schedule(4)
        bad = chain_placement(start=0.0, release=5.0)  # starts before release
        with pytest.raises(ScheduleConsistencyError):
            s.commit(bad)
        assert s.committed_jobs == 0

    def test_commit_atomic_on_capacity_failure(self):
        s = Schedule(2)
        s.commit(chain_placement(job_id=1, start=0.0, procs=2, dur=5.0))
        # Second commit of a 2-task chain whose second task overlaps.
        chain = TaskChain(
            (
                TaskSpec("a", ProcessorTimeRequest(1, 2.0), deadline=1000.0),
                TaskSpec("b", ProcessorTimeRequest(2, 2.0), deadline=1000.0),
            )
        )
        cp = ChainPlacement(
            job_id=2,
            chain_index=0,
            chain=chain,
            placements=(
                Placement.rigid(chain[0], 6.0),   # fine
                Placement.rigid(chain[1], 8.0),   # fine on its own
            ),
            release=6.0,
        )
        # Make the second task's window infeasible.
        s.profile.reserve(8.0, 10.0, 1)
        with pytest.raises(CapacityExceededError):
            s.commit(cp)
        # First task's tentative reservation must have been rolled back.
        assert s.profile.available_at(6.5) == 2
        assert s.committed_jobs == 1

    def test_rollback(self):
        s = Schedule(4)
        cp = chain_placement()
        s.commit(cp)
        s.rollback(cp)
        assert s.committed_jobs == 0
        assert s.committed_area == 0.0
        assert s.profile.available_at(2.0) == 4
        assert s.placements == ()

    def test_rollback_unknown_placement(self):
        s = Schedule(4)
        cp = chain_placement()
        s.commit(cp)
        other = chain_placement(job_id=9, start=20.0, release=20.0)
        s.profile.reserve(20.0, 25.0, 2)  # make release() legal
        with pytest.raises(ScheduleConsistencyError):
            s.rollback(other)

    def test_keep_placements_false(self):
        s = Schedule(4, keep_placements=False)
        s.commit(chain_placement())
        assert s.placements == ()
        assert s.committed_jobs == 1
        s.check_consistency()  # must not raise


class TestRollbackWindowAccounting:
    """Regression: rollback used to leave the utilization window stale.

    ``Schedule`` tracked ``first_release``/``last_finish`` as bare running
    extremes, so rolling back the earliest-released or latest-finishing job
    kept the old window and ``utilization()`` divided committed area by a
    span no surviving placement occupies.  The window is now recomputed
    from the surviving placements' release/finish multisets.
    """

    def test_rollback_latest_finisher_shrinks_window(self):
        s = Schedule(4)
        early = chain_placement(job_id=1, start=0.0, procs=2, dur=5.0)
        late = chain_placement(job_id=2, start=10.0, dur=5.0, release=10.0)
        s.commit(early)
        s.commit(late)
        assert s.last_finish == 15.0
        s.rollback(late)
        # Stale accounting kept last_finish == 15.0 and reported
        # utilization 10 / (4 * 15) instead of 10 / (4 * 5).
        assert s.last_finish == 5.0
        assert s.utilization() == pytest.approx(0.5)

    def test_rollback_earliest_release_shrinks_window(self):
        s = Schedule(4)
        early = chain_placement(job_id=1, start=0.0, procs=2, dur=5.0)
        late = chain_placement(job_id=2, start=10.0, dur=5.0, release=10.0)
        s.commit(early)
        s.commit(late)
        s.rollback(early)
        assert s.first_release == 10.0
        assert s.last_finish == 15.0
        assert s.utilization() == pytest.approx(0.5)

    def test_rollback_with_duplicate_extremes_keeps_window(self):
        s = Schedule(8)
        twin_a = chain_placement(job_id=1, start=0.0, procs=2, dur=5.0)
        twin_b = chain_placement(job_id=2, start=0.0, procs=2, dur=5.0)
        s.commit(twin_a)
        s.commit(twin_b)
        s.rollback(twin_a)
        # The twin still occupies the same window: no shrink.
        assert s.first_release == 0.0
        assert s.last_finish == 5.0
        assert s.utilization() == pytest.approx(10.0 / (8 * 5))

    def test_rollback_to_empty_resets_window(self):
        s = Schedule(4)
        cp = chain_placement()
        s.commit(cp)
        s.rollback(cp)
        assert s.first_release == float("inf")
        assert s.last_finish == float("-inf")
        assert s.utilization() == 0.0
        # The schedule remains fully usable afterwards.
        again = chain_placement(job_id=3, start=2.0, dur=3.0, release=2.0)
        s.commit(again)
        assert s.first_release == 2.0
        assert s.last_finish == 5.0
        assert s.utilization() == pytest.approx((2 * 3.0) / (4 * 3.0))


class TestMetrics:
    def test_utilization_empty(self):
        assert Schedule(4).utilization() == 0.0

    def test_utilization_single_job(self):
        s = Schedule(4)
        s.commit(chain_placement(start=0.0, procs=2, dur=5.0))
        # area 10 over capacity 4 x span 5
        assert s.utilization() == pytest.approx(0.5)

    def test_utilization_horizon(self):
        s = Schedule(4)
        s.commit(chain_placement(start=0.0, procs=2, dur=5.0))
        assert s.utilization(horizon=10.0) == pytest.approx(0.25)

    def test_utilization_never_above_one(self):
        s = Schedule(2)
        for i in range(4):
            s.commit(chain_placement(job_id=i, start=5.0 * i, procs=2, dur=5.0,
                                     release=5.0 * i))
        assert s.utilization() == pytest.approx(1.0)


class TestConsistency:
    def test_check_consistency_passes(self):
        s = Schedule(4)
        s.commit(chain_placement(job_id=1, start=0.0))
        s.commit(chain_placement(job_id=2, start=0.0, release=0.0))
        s.check_consistency()

    def test_gantt_rows(self):
        s = Schedule(4)
        s.commit(chain_placement(job_id=7, start=1.0))
        rows = list(s.gantt_rows())
        assert rows == [(7, "t", 1.0, 6.0, 2)]

    def test_compact_keeps_accounting(self):
        s = Schedule(4)
        s.commit(chain_placement(start=0.0))
        s.compact(100.0)
        assert s.committed_area == 10.0
        assert s.utilization() > 0
