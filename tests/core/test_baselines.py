"""Unit tests for baseline/ablation schedulers."""

import pytest
from hypothesis import given

from repro.core.baselines import BestFitScheduler, ConservativeArbitrator
from repro.core.greedy import GreedyScheduler
from repro.core.resources import ProcessorTimeRequest
from repro.core.schedule import Schedule
from repro.model.chain import TaskChain
from repro.model.job import Job
from repro.model.task import TaskSpec
from tests.conftest import task_chains


def task(name, procs, dur, deadline):
    return TaskSpec(name, ProcessorTimeRequest(procs, dur), deadline=deadline)


class TestBestFit:
    def test_prefers_tight_hole(self):
        s = Schedule(8)
        # Create a 2-high hole [0, 10) next to the full 8-high machine after.
        s.profile.reserve(0.0, 10.0, 6)
        g = BestFitScheduler(s)
        cp = g.place_chain(
            TaskChain((task("a", 2, 5.0, 1000.0),)), release=0.0
        )
        # First fit would also pick 0.0 here; craft a case where best-fit
        # differs: a 2-wide task with a loose hole first.
        assert cp.placements[0].start == 0.0

    def test_differs_from_first_fit(self):
        # Availability 4 on [0,10), 1 on [10,12), 2 on [12,1000): the task
        # (2 procs x 5) fits loosely at t=0 (surplus 2) and tightly at t=12
        # (surplus 0).  First fit takes the early start, best fit the tight
        # hole — a bounded availability dip separates the two holes.
        s = Schedule(8)
        s.profile.reserve(0.0, 10.0, 4)
        s.profile.reserve(10.0, 12.0, 7)
        s.profile.reserve(12.0, 1000.0, 6)
        c = TaskChain((task("a", 2, 5.0, 10000.0),))
        first = GreedyScheduler(s).place_chain(c, release=0.0)
        best = BestFitScheduler(s).place_chain(c, release=0.0)
        assert first.placements[0].start == 0.0
        assert best.placements[0].start == 12.0

    def test_respects_deadline(self):
        s = Schedule(4)
        s.profile.reserve(0.0, 10.0, 4)
        g = BestFitScheduler(s)
        assert g.place_chain(
            TaskChain((task("a", 1, 5.0, 12.0),)), release=0.0
        ) is None

    @given(task_chains(max_len=3, max_procs=4))
    def test_placements_always_valid(self, c):
        s = Schedule(4)
        s.profile.reserve(0.0, 8.0, 2)
        cp = BestFitScheduler(s).place_chain(c, release=0.0)
        if cp is not None:
            cp.validate()
            for pl in cp.placements:
                assert s.profile.min_available(pl.start, pl.end) >= pl.processors

    @given(task_chains(max_len=2, max_procs=4))
    def test_feasibility_agrees_with_first_fit(self, c):
        """Best fit and first fit agree on *whether* a chain fits."""
        s = Schedule(4)
        s.profile.reserve(2.0, 9.0, 3)
        first = GreedyScheduler(s).place_chain(c, release=0.0)
        best = BestFitScheduler(s).place_chain(c, release=0.0)
        # First-fit dominance: anything best-fit schedules, first-fit can too.
        if best is not None:
            assert first is not None


class TestConservative:
    def make_job(self, release=0.0):
        wide = TaskChain((task("w", 4, 2.0, 50.0),), label="wide")
        narrow = TaskChain((task("n", 1, 8.0, 50.0),), label="narrow")
        return Job.tunable_of([wide, narrow], release=release)

    def test_admits_when_all_paths_fit(self):
        arb = ConservativeArbitrator(8)
        decision = arb.submit(self.make_job())
        assert decision.admitted

    def test_rejects_when_one_path_blocked(self):
        arb = ConservativeArbitrator(4)
        arb.schedule.profile.reserve(0.0, 49.0, 1)  # narrow path can't finish
        decision = arb.submit(self.make_job())
        assert not decision.admitted
        assert "conservative" in decision.reason

    def test_plain_arbitrator_admits_same_case(self):
        from repro.core.arbitrator import QoSArbitrator

        arb = QoSArbitrator(4)
        arb.schedule.profile.reserve(0.0, 49.0, 1)
        assert arb.submit(self.make_job()).admitted

    def test_quality_accounting_on_admit(self):
        arb = ConservativeArbitrator(8)
        arb.submit(self.make_job())
        assert arb.achieved_quality == pytest.approx(1.0)
