"""Unit and property tests for the earliest-feasible-start search."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.first_fit import earliest_fit
from repro.core.profile import AvailabilityProfile
from tests.conftest import loaded_profiles, nice_durations, nice_times


class TestBasics:
    def test_empty_machine_starts_at_release(self):
        p = AvailabilityProfile(4)
        assert earliest_fit(p, 2, 5.0, 3.0) == 3.0

    def test_waits_for_capacity(self):
        p = AvailabilityProfile(4)
        p.reserve(0.0, 10.0, 3)
        assert earliest_fit(p, 2, 5.0, 0.0) == 10.0

    def test_fits_in_partial_capacity(self):
        p = AvailabilityProfile(4)
        p.reserve(0.0, 10.0, 3)
        assert earliest_fit(p, 1, 5.0, 0.0) == 0.0

    def test_straddles_boundary_when_enough(self):
        p = AvailabilityProfile(4)
        p.reserve(0.0, 10.0, 2)  # 2 free, then 4 free
        assert earliest_fit(p, 2, 20.0, 0.0) == 0.0

    def test_gap_too_short(self):
        p = AvailabilityProfile(4)
        p.reserve(0.0, 2.0, 3)
        p.reserve(5.0, 9.0, 3)
        # 3 free only in [2,5): too short for duration 4 at width 2...
        # width 2 fits everywhere; width 3 needs the gap.
        assert earliest_fit(p, 3, 4.0, 0.0) == 9.0
        assert earliest_fit(p, 3, 3.0, 0.0) == 2.0

    def test_deadline_met_exactly(self):
        p = AvailabilityProfile(4)
        p.reserve(0.0, 5.0, 4)
        assert earliest_fit(p, 4, 5.0, 0.0, deadline=10.0) == 5.0

    def test_deadline_missed(self):
        p = AvailabilityProfile(4)
        p.reserve(0.0, 5.0, 4)
        assert earliest_fit(p, 4, 5.0, 0.0, deadline=9.0) is None

    def test_wider_than_machine(self):
        p = AvailabilityProfile(4)
        assert earliest_fit(p, 5, 1.0, 0.0) is None

    def test_release_inside_busy_segment(self):
        p = AvailabilityProfile(2)
        p.reserve(0.0, 10.0, 2)
        assert earliest_fit(p, 1, 2.0, 4.0) == 10.0

    def test_release_before_origin_clamped(self):
        p = AvailabilityProfile(2, origin=5.0)
        assert earliest_fit(p, 1, 2.0, 0.0) == 5.0

    def test_impossible_duration_budget(self):
        p = AvailabilityProfile(2)
        assert earliest_fit(p, 1, 10.0, 0.0, deadline=5.0) is None

    def test_permanently_saturated_tail(self):
        # Trailing segment has too little availability: never fits.
        p = AvailabilityProfile(2)
        p.reserve(0.0, 5.0, 1)
        # width-2 task can only fit at >= 5.0; but add a long tail blocker
        p2 = AvailabilityProfile(2)
        p2.reserve(0.0, 1000.0, 1)
        assert earliest_fit(p2, 2, 1.0, 0.0, deadline=900.0) is None
        assert earliest_fit(p2, 2, 1.0, 0.0) == 1000.0


class TestProperties:
    @given(loaded_profiles(), st.integers(1, 8), nice_durations, nice_times)
    def test_result_is_feasible(self, profile, procs, duration, release):
        start = earliest_fit(profile, procs, duration, release)
        if start is None:
            assert procs > profile.capacity
            return
        assert start >= max(release, profile.origin) - 1e-9
        assert profile.min_available(start, start + duration) >= procs

    @given(loaded_profiles(), st.integers(1, 8), nice_durations, nice_times)
    def test_result_is_minimal(self, profile, procs, duration, release):
        """No feasible start strictly earlier than the returned one."""
        start = earliest_fit(profile, procs, duration, release)
        if start is None:
            return
        release = max(release, profile.origin)
        # Candidate earlier starts: release and breakpoints in (release, start).
        candidates = [
            t
            for t in [release, *profile.breakpoints]
            if release <= t < start - 1e-9
        ]
        for cand in candidates:
            assert profile.min_available(cand, cand + duration) < procs

    @given(loaded_profiles(), st.integers(1, 4), nice_durations, nice_times)
    def test_monotone_in_release(self, profile, procs, duration, release):
        """A later release can never yield an earlier start."""
        a = earliest_fit(profile, procs, duration, release)
        b = earliest_fit(profile, procs, duration, release + 5.0)
        if a is None:
            assert b is None
        else:
            assert b is not None and b >= a - 1e-9


class TestScanBackends:
    """The scalar walk and the vectorized mirror scan are interchangeable."""

    @given(loaded_profiles(), st.integers(1, 8), nice_durations, nice_times)
    def test_vector_scan_matches_scalar_scan(self, profile, procs, duration, release):
        from bisect import bisect_right

        from repro.core.first_fit import _scalar_scan, _vector_scan

        if procs > profile.capacity:
            return
        release = max(release, profile.origin)
        times = profile._times
        n = len(times)
        i = max(bisect_right(times, release) - 1, 0)
        scalar = _scalar_scan(profile, times, n, i, procs, duration, release, 1e9)
        vector = _vector_scan(profile, times, n, i, procs, duration, release, 1e9)
        assert scalar == vector

    def test_large_profile_dispatches_to_vector_scan(self):
        from repro.core import first_fit

        profile = AvailabilityProfile(8)
        for k in range(first_fit.VECTOR_MIN_SEGMENTS):
            profile.reserve(2.0 * k, 2.0 * k + 1.0, 1 + k % 3)
        assert len(profile) >= first_fit.VECTOR_MIN_SEGMENTS
        start = earliest_fit(profile, 8, 3.0, 0.0)
        # The vectorized path builds the mirrors on first use.
        assert profile._np_avail is not None
        assert profile._np_times is not None
        # And returns a plain float the rest of the stack can serialize.
        assert type(start) is float
        # Cross-check against the scalar walk on an identical profile.
        legacy = profile.copy()
        from bisect import bisect_right

        from repro.core.first_fit import _scalar_scan

        i = max(bisect_right(legacy._times, 0.0) - 1, 0)
        assert (
            _scalar_scan(
                legacy, legacy._times, len(legacy._times), i, 8, 3.0, 0.0, float("inf")
            )
            == start
        )
