"""Unit and property tests for the multi-resource (vector) model."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.multiresource import (
    MultiResourceProfile,
    VectorRequest,
    earliest_vector_fit,
)
from repro.errors import (
    CapacityExceededError,
    ConfigurationError,
    InvalidTaskError,
    SchedulingError,
)


def profile(**capacities):
    return MultiResourceProfile(capacities or {"cpu": 4, "mem": 8})


class TestVectorRequest:
    def test_basic(self):
        req = VectorRequest({"cpu": 2, "mem": 4}, 5.0)
        assert req.resources == {"cpu", "mem"}
        assert req.area("cpu") == 10.0
        assert req.area("mem") == 20.0

    def test_validation(self):
        with pytest.raises(InvalidTaskError):
            VectorRequest({}, 1.0)
        with pytest.raises(InvalidTaskError):
            VectorRequest({"cpu": 0}, 1.0)
        with pytest.raises(InvalidTaskError):
            VectorRequest({"cpu": 1}, 0.0)
        with pytest.raises(InvalidTaskError):
            VectorRequest({"cpu": True}, 1.0)

    def test_amounts_read_only(self):
        req = VectorRequest({"cpu": 1}, 1.0)
        with pytest.raises(TypeError):
            req.amounts["cpu"] = 5  # type: ignore[index]


class TestMultiResourceProfile:
    def test_construction(self):
        p = profile()
        assert set(p.resources) == {"cpu", "mem"}
        assert p.capacity("cpu") == 4
        assert p.capacity("mem") == 8

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            MultiResourceProfile({})

    def test_unknown_resource(self):
        p = profile()
        with pytest.raises(SchedulingError):
            p.capacity("gpu")
        with pytest.raises(SchedulingError):
            p.fits_at(VectorRequest({"gpu": 1}, 1.0), 0.0)

    def test_reserve_and_fits(self):
        p = profile()
        req = VectorRequest({"cpu": 2, "mem": 4}, 5.0)
        assert p.fits_at(req, 0.0)
        p.reserve(req, 0.0)
        assert p.fits_at(req, 0.0)  # half of each resource remains
        p.reserve(req, 0.0)
        assert not p.fits_at(req, 0.0)
        assert p.fits_at(req, 5.0)
        p.check_invariants()

    def test_reserve_atomic_on_partial_failure(self):
        p = profile()
        # Exhaust mem but not cpu over [0, 5).
        p.reserve(VectorRequest({"mem": 8}, 5.0), 0.0)
        before_cpu = p.profile("cpu").copy()
        with pytest.raises(CapacityExceededError):
            p.reserve(VectorRequest({"cpu": 1, "mem": 1}, 2.0), 0.0)
        assert p.profile("cpu") == before_cpu  # cpu rollback happened

    def test_release_roundtrip(self):
        p = profile()
        req = VectorRequest({"cpu": 3, "mem": 2}, 4.0)
        p.reserve(req, 1.0)
        p.release(req, 1.0)
        assert p.profile("cpu").available_at(2.0) == 4
        assert p.profile("mem").available_at(2.0) == 8

    def test_partial_resource_request(self):
        """A request may touch only a subset of resources."""
        p = profile()
        p.reserve(VectorRequest({"cpu": 4}, 10.0), 0.0)
        assert p.profile("mem").available_at(5.0) == 8

    def test_segments(self):
        p = profile()
        p.reserve(VectorRequest({"cpu": 1}, 2.0), 0.0)
        rows = list(p.segments())
        assert any(r[0] == "cpu" and r[3] == 3 for r in rows)
        assert any(r[0] == "mem" and r[3] == 8 for r in rows)


class TestEarliestVectorFit:
    def test_empty_machine(self):
        p = profile()
        req = VectorRequest({"cpu": 2, "mem": 4}, 5.0)
        assert earliest_vector_fit(p, req, 3.0) == 3.0

    def test_waits_for_binding_resource(self):
        p = profile()
        p.reserve(VectorRequest({"mem": 7}, 10.0), 0.0)  # mem is the bottleneck
        req = VectorRequest({"cpu": 1, "mem": 4}, 2.0)
        assert earliest_vector_fit(p, req, 0.0) == 10.0

    def test_alternating_bottlenecks(self):
        """The fixpoint must hop across resources until both agree."""
        p = profile()
        p.reserve(VectorRequest({"cpu": 4}, 5.0), 0.0)    # cpu busy [0,5)
        p.reserve(VectorRequest({"mem": 8}, 4.0), 5.0)    # mem busy [5,9)
        p.reserve(VectorRequest({"cpu": 4}, 3.0), 9.0)    # cpu busy [9,12)
        req = VectorRequest({"cpu": 1, "mem": 1}, 1.0)
        assert earliest_vector_fit(p, req, 0.0) == 12.0

    def test_deadline(self):
        p = profile()
        p.reserve(VectorRequest({"cpu": 4, "mem": 8}, 10.0), 0.0)
        req = VectorRequest({"cpu": 1, "mem": 1}, 5.0)
        assert earliest_vector_fit(p, req, 0.0, deadline=12.0) is None
        assert earliest_vector_fit(p, req, 0.0, deadline=15.0) == 10.0

    def test_oversized_request(self):
        p = profile()
        assert earliest_vector_fit(p, VectorRequest({"cpu": 5}, 1.0), 0.0) is None

    @given(st.data())
    def test_fixpoint_result_is_feasible_and_minimal(self, data):
        """Property: the fit is feasible and no breakpoint start before it is."""
        p = MultiResourceProfile({"a": 4, "b": 4})
        # Random feasible reservation history on both resources.
        for _ in range(data.draw(st.integers(0, 8))):
            name = data.draw(st.sampled_from(["a", "b"]))
            t0 = data.draw(st.integers(0, 40)) / 2
            dur = data.draw(st.integers(1, 16)) / 2
            avail = p.profile(name).min_available(t0, t0 + dur)
            if avail == 0:
                continue
            units = data.draw(st.integers(1, avail))
            p.reserve(VectorRequest({name: units}, dur), t0)
        req = VectorRequest(
            {
                "a": data.draw(st.integers(1, 4)),
                "b": data.draw(st.integers(1, 4)),
            },
            data.draw(st.integers(1, 10)) / 2,
        )
        release = data.draw(st.integers(0, 30)) / 2
        fit = earliest_vector_fit(p, req, release)
        assert fit is not None  # capacities always suffice eventually
        assert p.fits_at(req, fit)
        # Minimality: no earlier candidate (release or any breakpoint) fits.
        candidates = {release}
        for name in ("a", "b"):
            candidates.update(
                t for t in p.profile(name).breakpoints if release <= t < fit
            )
        for cand in candidates:
            if cand < fit - 1e-9:
                assert not p.fits_at(req, cand)
