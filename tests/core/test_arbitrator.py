"""Unit tests for the QoS arbitrator."""

import pytest

from repro.core.arbitrator import ArbitrationObjective, QoSArbitrator
from repro.core.greedy import GreedyScheduler
from repro.core.malleable import MalleableScheduler
from repro.core.resources import ProcessorTimeRequest
from repro.model.chain import TaskChain
from repro.model.job import Job
from repro.model.task import TaskSpec


def two_path_job(release=0.0, q_fast=0.6, q_slow=1.0):
    """Fast low-quality path vs slow high-quality path."""
    fast = TaskChain(
        (TaskSpec("a", ProcessorTimeRequest(4, 2.0), deadline=100.0, quality=q_fast),),
        label="fast",
    )
    slow = TaskChain(
        (TaskSpec("a", ProcessorTimeRequest(2, 8.0), deadline=100.0, quality=q_slow),),
        label="slow",
    )
    return Job.tunable_of([fast, slow], release=release)


class TestConstruction:
    def test_rigid_scheduler_by_default(self):
        arb = QoSArbitrator(4)
        assert type(arb.scheduler) is GreedyScheduler

    def test_malleable_scheduler(self):
        arb = QoSArbitrator(4, malleable=True)
        assert isinstance(arb.scheduler, MalleableScheduler)

    def test_capacity_property(self):
        assert QoSArbitrator(7).capacity == 7


class TestSubmit:
    def test_earliest_finish_objective(self):
        arb = QoSArbitrator(4)
        decision = arb.submit(two_path_job())
        assert decision.admitted
        assert decision.placement.chain.label == "fast"

    def test_max_quality_objective(self):
        arb = QoSArbitrator(4, objective=ArbitrationObjective.MAX_QUALITY)
        decision = arb.submit(two_path_job())
        assert decision.admitted
        assert decision.placement.chain.label == "slow"

    def test_max_quality_falls_back(self):
        arb = QoSArbitrator(4, objective=ArbitrationObjective.MAX_QUALITY)
        # Leave only 1 processor free until t=97: the slow path (2 procs for
        # 8) can no longer finish by 100, the fast path (4 procs for 2) can.
        arb.schedule.profile.reserve(0.0, 97.0, 3)
        decision = arb.submit(two_path_job())
        assert decision.admitted
        assert decision.placement.chain.label == "fast"

    def test_max_quality_reject(self):
        arb = QoSArbitrator(4, objective=ArbitrationObjective.MAX_QUALITY)
        arb.schedule.profile.reserve(0.0, 99.5, 4)
        decision = arb.submit(two_path_job())
        assert not decision.admitted
        assert arb.rejected == 1

    def test_quality_accounting(self):
        arb = QoSArbitrator(4, objective=ArbitrationObjective.MAX_QUALITY)
        arb.submit(two_path_job())
        assert arb.achieved_quality == pytest.approx(1.0)
        assert arb.quality_ratio == pytest.approx(1.0)

    def test_quality_ratio_under_degradation(self):
        arb = QoSArbitrator(4)  # earliest finish picks the 0.6 path
        arb.submit(two_path_job())
        assert arb.achieved_quality == pytest.approx(0.6)
        assert arb.quality_ratio == pytest.approx(0.6)

    def test_quality_ratio_empty(self):
        assert QoSArbitrator(4).quality_ratio == 0.0

    def test_counts(self):
        arb = QoSArbitrator(2)
        arb.submit(two_path_job())
        # Saturate: tall path needs 4 (skipped), slow 2x8; fill the machine.
        arb.schedule.profile.reserve(8.0, 92.5, 2)
        arb.submit(two_path_job(release=1.0))
        assert arb.admitted + arb.rejected == 2

    def test_chain_usage(self):
        arb = QoSArbitrator(8)
        arb.submit(two_path_job())
        arb.submit(two_path_job(release=1.0))
        usage = arb.chain_usage()
        assert sum(usage.values()) == 2

    def test_utilization_delegates(self):
        arb = QoSArbitrator(4)
        arb.submit(two_path_job())
        assert 0 < arb.utilization() <= 1.0

    def test_seeded_random_policy(self):
        from repro.core.policies import TieBreakPolicy

        results = []
        for _ in range(2):
            arb = QoSArbitrator(8, policy=TieBreakPolicy.RANDOM, seed=13)
            decisions = [arb.submit(two_path_job(release=float(i))) for i in range(5)]
            results.append([d.chain_index for d in decisions])
        assert results[0] == results[1]
