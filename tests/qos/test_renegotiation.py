"""Unit tests for renegotiation across capacity changes."""

import pytest

from repro.core.arbitrator import QoSArbitrator
from repro.errors import ConfigurationError, NegotiationError
from repro.qos.renegotiation import CapacityChange, renegotiate
from repro.workloads.synthetic import SyntheticParams


@pytest.fixture
def loaded():
    """An arbitrator with a batch of admitted tunable jobs, plus the jobs."""
    params = SyntheticParams(x=8, t=10.0, alpha=0.5, laxity=0.6)
    arb = QoSArbitrator(16)
    jobs = {}
    for i in range(10):
        job = params.tunable_job(release=6.0 * i)
        jobs[job.job_id] = job
        arb.submit(job)
    return arb, jobs


class TestCapacityChange:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CapacityChange(time=1.0, new_capacity=0)
        with pytest.raises(ConfigurationError):
            CapacityChange(time=float("inf"), new_capacity=4)


class TestRenegotiate:
    def test_partition_is_complete(self, loaded):
        arb, jobs = loaded
        result = renegotiate(arb.schedule, CapacityChange(30.0, 8), jobs)
        total = (
            len(result.finished)
            + len(result.carried)
            + len(result.reallocated)
            + len(result.dropped)
        )
        assert total == arb.admitted

    def test_finished_untouched(self, loaded):
        arb, jobs = loaded
        result = renegotiate(arb.schedule, CapacityChange(30.0, 8), jobs)
        for cp in result.finished:
            assert cp.finish <= 30.0

    def test_carried_fit_new_capacity(self, loaded):
        arb, jobs = loaded
        result = renegotiate(arb.schedule, CapacityChange(30.0, 8), jobs)
        for cp in result.carried:
            assert cp.start < 30.0 < cp.finish
            for pl in cp.placements:
                if pl.end > 30.0:
                    assert pl.processors <= 8

    def test_reallocated_valid_on_new_schedule(self, loaded):
        arb, jobs = loaded
        result = renegotiate(arb.schedule, CapacityChange(30.0, 8), jobs)
        result.schedule.profile.check_invariants()
        for _old, new in result.reallocated:
            new.validate()
            assert new.start >= 30.0

    def test_no_capacity_change_drops_nothing(self, loaded):
        arb, jobs = loaded
        result = renegotiate(arb.schedule, CapacityChange(30.0, 16), jobs)
        assert result.dropped == ()

    def test_severe_drop_loses_jobs(self, loaded):
        arb, jobs = loaded
        # The tall task needs 8 processors; a machine of 4 kills every
        # not-yet-finished chain (rigid model).
        result = renegotiate(arb.schedule, CapacityChange(30.0, 4), jobs)
        assert len(result.dropped) > 0
        assert result.reallocated == ()

    def test_missing_job_raises(self, loaded):
        arb, jobs = loaded
        some_future_id = None
        for cp in arb.schedule.placements:
            if cp.start >= 30.0:
                some_future_id = cp.job_id
                break
        assert some_future_id is not None
        del jobs[some_future_id]
        with pytest.raises(NegotiationError):
            renegotiate(arb.schedule, CapacityChange(30.0, 8), jobs)

    def test_capacity_increase_drops_nothing(self, loaded):
        """Renegotiating onto a *larger* machine keeps every job."""
        arb, jobs = loaded
        result = renegotiate(arb.schedule, CapacityChange(30.0, 32), jobs)
        assert result.dropped == ()
        result.schedule.profile.check_invariants()

    def test_capacity_increase_never_worsens_finish(self, loaded):
        arb, jobs = loaded
        result = renegotiate(arb.schedule, CapacityChange(30.0, 32), jobs)
        for old, new in result.reallocated:
            # A bigger machine from the change time onward can only delay a
            # job relative to its old slot if the old slot started before
            # the change; jobs starting after it must not get worse.
            if old.start >= 30.0:
                assert new.finish <= old.finish + 1e-9

    def test_path_switches_counted(self, loaded):
        arb, jobs = loaded
        result = renegotiate(arb.schedule, CapacityChange(30.0, 8), jobs)
        switches = sum(
            1
            for old, new in result.reallocated
            if old.chain_index != new.chain_index
        )
        assert result.path_switches == switches


class TestRenegotiateEdgeCases:
    def _late_batch(self):
        """Admitted jobs none of which starts before t=10."""
        params = SyntheticParams(x=8, t=10.0, alpha=0.5, laxity=0.6)
        arb = QoSArbitrator(16)
        jobs = {}
        for i in range(6):
            job = params.tunable_job(release=10.0 + 6.0 * i)
            jobs[job.job_id] = job
            arb.submit(job)
        return arb, jobs

    def test_change_before_first_release(self):
        """A change before anything starts re-plans the entire batch."""
        arb, jobs = self._late_batch()
        result = renegotiate(arb.schedule, CapacityChange(5.0, 16), jobs)
        assert result.finished == ()
        assert result.carried == ()
        assert len(result.reallocated) + len(result.dropped) == arb.admitted
        # Same capacity, empty machine: every job is re-admitted.
        assert result.dropped == ()
        result.schedule.profile.check_invariants()
        for _old, new in result.reallocated:
            new.validate()

    def test_change_after_all_finished(self, loaded):
        """A change after the last finish touches nothing."""
        arb, jobs = loaded
        tau = max(cp.finish for cp in arb.schedule.placements) + 1.0
        result = renegotiate(arb.schedule, CapacityChange(tau, 4), jobs)
        assert len(result.finished) == arb.admitted
        assert result.carried == ()
        assert result.reallocated == ()
        assert result.dropped == ()

    def _single_running(self, capacity=16):
        """One admitted rigid job whose tall (8-wide) task spans t=5."""
        params = SyntheticParams(x=8, t=10.0, alpha=0.5, laxity=0.6)
        arb = QoSArbitrator(capacity)
        job = params.rigid_job(1, release=0.0)  # tall task first
        decision = arb.submit(job)
        assert decision.admitted
        return arb, {job.job_id: job}, decision.placement

    def test_running_placement_exactly_at_boundary_carried(self):
        """A running 8-wide task survives a drop to exactly 8 processors."""
        arb, jobs, cp = self._single_running()
        assert cp.placements[0].processors == 8
        tau = cp.placements[0].start + cp.placements[0].duration / 2
        result = renegotiate(arb.schedule, CapacityChange(tau, 8), jobs)
        assert [c.job_id for c in result.carried] == [cp.job_id]
        assert result.dropped == ()
        result.schedule.profile.check_invariants()

    def test_running_placement_one_below_boundary_dropped(self):
        """One processor fewer and the rigid reservation cannot be carried."""
        arb, jobs, cp = self._single_running()
        tau = cp.placements[0].start + cp.placements[0].duration / 2
        result = renegotiate(arb.schedule, CapacityChange(tau, 7), jobs)
        assert result.carried == ()
        assert list(result.dropped) == [cp.job_id]
