"""Unit tests for the QoS agent."""

import pytest

from repro.core.arbitrator import QoSArbitrator
from repro.core.resources import ProcessorTimeRequest
from repro.errors import NegotiationError
from repro.model.chain import TaskChain
from repro.model.task import TaskSpec
from repro.qos.agent import QoSAgent


def chains():
    return [
        TaskChain(
            (TaskSpec("a", ProcessorTimeRequest(4, 2.0), deadline=50.0, quality=0.7),),
            label="fast",
            params={"mode": "fast"},
        ),
        TaskChain(
            (TaskSpec("a", ProcessorTimeRequest(1, 8.0), deadline=50.0, quality=1.0),),
            label="slow",
            params={"mode": "slow"},
        ),
    ]


class TestAgent:
    def test_requires_paths(self):
        with pytest.raises(NegotiationError):
            QoSAgent("empty", [])

    def test_tunable_flag(self):
        assert QoSAgent("x", chains()).tunable
        assert not QoSAgent("y", chains()[:1]).tunable

    def test_path_qualities(self):
        assert QoSAgent("x", chains()).path_qualities() == [0.7, 1.0]

    def test_negotiate_success_configures(self):
        agent = QoSAgent("x", chains())
        seen = []
        agent.on_configure(lambda params: seen.append(dict(params)))
        contract = agent.negotiate(QoSArbitrator(8), release=0.0)
        assert contract is not None
        assert agent.contract is contract
        assert seen == [{"mode": "fast"}]
        assert agent.granted_params()["mode"] == "fast"

    def test_negotiate_rejection(self):
        arb = QoSArbitrator(4)
        arb.schedule.profile.reserve(0.0, 49.9, 4)
        agent = QoSAgent("x", chains())
        assert agent.negotiate(arb, release=0.0) is None
        assert agent.contract is None
        with pytest.raises(NegotiationError):
            agent.granted_params()

    def test_build_request_carries_release(self):
        request = QoSAgent("x", chains()).build_request(7.5)
        assert request.job.release == 7.5
        assert request.job.name == "x"

    def test_fresh_job_identity_per_request(self):
        agent = QoSAgent("x", chains())
        a = agent.build_request(0.0)
        b = agent.build_request(0.0)
        assert a.job.job_id != b.job.job_id

    def test_repeated_negotiation(self):
        """An agent can renegotiate (e.g. for a new period/frame)."""
        agent = QoSAgent("x", chains())
        arb = QoSArbitrator(8)
        c1 = agent.negotiate(arb, release=0.0)
        c2 = agent.negotiate(arb, release=10.0)
        assert c1 is not None and c2 is not None
        assert agent.contract is c2
