"""Unit tests for the negotiation protocol."""

import pytest

from repro.core.arbitrator import QoSArbitrator
from repro.core.resources import ProcessorTimeRequest
from repro.model.chain import TaskChain
from repro.model.job import Job
from repro.model.task import TaskSpec
from repro.qos.negotiation import (
    ReservationGrant,
    ReservationReject,
    ReservationRequest,
    negotiate,
)


def job(release=0.0):
    fast = TaskChain(
        (TaskSpec("a", ProcessorTimeRequest(4, 2.0), deadline=50.0),),
        label="fast",
        params={"mode": "fast"},
    )
    slow = TaskChain(
        (TaskSpec("a", ProcessorTimeRequest(1, 8.0), deadline=50.0),),
        label="slow",
        params={"mode": "slow"},
    )
    return Job.tunable_of([fast, slow], release=release)


class TestNegotiate:
    def test_grant(self):
        arb = QoSArbitrator(4)
        request = ReservationRequest(job())
        reply = negotiate(arb, request)
        assert isinstance(reply, ReservationGrant)
        assert reply.request_id == request.request_id
        assert reply.contract.params["mode"] == "fast"
        assert reply.contract.finish == 2.0

    def test_reject(self):
        arb = QoSArbitrator(4)
        arb.schedule.profile.reserve(0.0, 49.9, 4)
        reply = negotiate(arb, ReservationRequest(job()))
        assert isinstance(reply, ReservationReject)
        assert reply.reason

    def test_request_ids_unique(self):
        a = ReservationRequest(job())
        b = ReservationRequest(job())
        assert a.request_id != b.request_id

    def test_release_property(self):
        assert ReservationRequest(job(release=5.0)).release == 5.0

    def test_grant_commits_resources(self):
        arb = QoSArbitrator(4)
        negotiate(arb, ReservationRequest(job()))
        assert arb.schedule.committed_jobs == 1
        assert arb.schedule.profile.available_at(1.0) == 0
