"""Unit tests for resource contracts."""

import pytest

from repro.core.placement import ChainPlacement, Placement
from repro.core.resources import ProcessorTimeRequest
from repro.model.chain import TaskChain
from repro.model.quality import QualityComposition
from repro.model.task import TaskSpec
from repro.qos.contract import ResourceContract


@pytest.fixture
def contract():
    chain = TaskChain(
        (
            TaskSpec("a", ProcessorTimeRequest(2, 5.0), deadline=50.0, quality=0.8),
            TaskSpec("b", ProcessorTimeRequest(4, 2.0), deadline=50.0, quality=0.5),
        )
    )
    cp = ChainPlacement(
        job_id=9,
        chain_index=1,
        chain=chain,
        placements=(
            Placement.rigid(chain[0], 0.0),
            Placement.rigid(chain[1], 5.0),
        ),
        release=0.0,
    )
    return ResourceContract(job_id=9, placement=cp, params={"g": 16})


class TestContract:
    def test_fields(self, contract):
        assert contract.chain_index == 1
        assert contract.start == 0.0
        assert contract.finish == 7.0
        assert contract.params["g"] == 16

    def test_params_read_only(self, contract):
        with pytest.raises(TypeError):
            contract.params["g"] = 64  # type: ignore[index]

    def test_quality(self, contract):
        assert contract.quality() == pytest.approx(0.4)
        assert contract.quality(QualityComposition.MIN) == pytest.approx(0.5)

    def test_task_schedule(self, contract):
        rows = contract.task_schedule()
        assert rows == [("a", 0.0, 5.0, 2), ("b", 5.0, 7.0, 4)]
