"""Unit tests for mid-job contract revision."""

import pytest

from repro.core.arbitrator import QoSArbitrator
from repro.core.resources import ProcessorTimeRequest
from repro.errors import NegotiationError
from repro.model.chain import TaskChain
from repro.model.job import Job
from repro.model.task import TaskSpec
from repro.qos.contract import ResourceContract
from repro.qos.revision import revise_contract


def task(name, procs, dur, deadline):
    return TaskSpec(name, ProcessorTimeRequest(procs, dur), deadline=deadline)


def admitted_contract(arbitrator, deadline2=60.0):
    chain = TaskChain(
        (task("a", 2, 5.0, 30.0), task("b", 2, 5.0, deadline2)), label="orig"
    )
    decision = arbitrator.submit(Job.rigid(chain, release=0.0))
    assert decision.admitted
    return ResourceContract(
        job_id=decision.job_id, placement=decision.placement, params={}
    )


class TestReviseContract:
    def test_grow_suffix(self):
        """Task b turns out to need twice the time; revision fits it."""
        arb = QoSArbitrator(4)
        contract = admitted_contract(arb)
        result = revise_contract(
            arb.schedule, contract, now=5.0,
            revised_suffix=(task("b", 2, 10.0, 60.0),),
        )
        assert result.accepted
        assert result.area_delta == pytest.approx(10.0)  # 2x10 - 2x5
        new = result.contract.placement
        assert new.placements[0].start == 0.0          # started task untouched
        assert new.placements[1].duration == 10.0
        assert new.finish <= 60.0
        arb.schedule.check_consistency()

    def test_shrink_suffix_frees_resources(self):
        arb = QoSArbitrator(4)
        contract = admitted_contract(arb)
        result = revise_contract(
            arb.schedule, contract, now=5.0,
            revised_suffix=(task("b", 1, 2.0, 60.0),),
        )
        assert result.accepted
        assert result.area_delta == pytest.approx(2.0 - 10.0)
        # Freed capacity is visible to later arrivals.
        assert arb.schedule.profile.available_at(8.0) >= 3

    def test_suffix_may_add_tasks(self):
        arb = QoSArbitrator(4)
        contract = admitted_contract(arb)
        result = revise_contract(
            arb.schedule, contract, now=5.0,
            revised_suffix=(task("b", 2, 5.0, 60.0), task("c", 1, 3.0, 80.0)),
        )
        assert result.accepted
        assert len(result.contract.placement.placements) == 3
        arb.schedule.check_consistency()

    def test_infeasible_proposal_keeps_original(self):
        arb = QoSArbitrator(4)
        contract = admitted_contract(arb)
        # Block the machine so a longer b cannot fit by its deadline.
        arb.schedule.profile.reserve(10.0, 58.0, 4)
        before = arb.schedule.profile.copy()
        result = revise_contract(
            arb.schedule, contract, now=5.0,
            revised_suffix=(task("b", 2, 20.0, 60.0),),
        )
        assert not result.accepted
        assert result.contract is contract
        assert arb.schedule.profile == before  # transactional

    def test_deadlines_stay_anchored_to_release(self):
        """Revision at t=5 cannot push b past release+deadline."""
        arb = QoSArbitrator(4)
        contract = admitted_contract(arb, deadline2=12.0)
        result = revise_contract(
            arb.schedule, contract, now=5.0,
            revised_suffix=(task("b", 2, 8.0, 12.0),),
        )
        assert not result.accepted  # 5 + 8 > 12

    def test_nothing_unstarted_rejected(self):
        arb = QoSArbitrator(4)
        contract = admitted_contract(arb)
        with pytest.raises(NegotiationError):
            revise_contract(
                arb.schedule, contract, now=100.0,
                revised_suffix=(task("b", 1, 1.0, 200.0),),
            )

    def test_empty_suffix_rejected(self):
        arb = QoSArbitrator(4)
        contract = admitted_contract(arb)
        with pytest.raises(NegotiationError):
            revise_contract(arb.schedule, contract, now=5.0, revised_suffix=())

    def test_foreign_contract_rejected(self):
        arb_a = QoSArbitrator(4)
        arb_b = QoSArbitrator(4)
        contract = admitted_contract(arb_a)
        admitted_contract(arb_b)  # occupy similar region on b
        before = arb_b.schedule.profile.copy()
        with pytest.raises(NegotiationError):
            revise_contract(
                arb_b.schedule, contract, now=5.0,
                revised_suffix=(task("b", 2, 5.0, 60.0),),
            )
        # Rejection happens before any mutation of the foreign schedule.
        assert arb_b.schedule.profile == before

    def test_accounting_updates(self):
        arb = QoSArbitrator(4)
        contract = admitted_contract(arb)
        area_before = arb.schedule.committed_area
        result = revise_contract(
            arb.schedule, contract, now=5.0,
            revised_suffix=(task("b", 2, 10.0, 60.0),),
        )
        assert arb.schedule.committed_area == pytest.approx(
            area_before + result.area_delta
        )
        assert arb.schedule.committed_jobs == 1
