"""Mid-execution malleability: cost model, engine policy, driver mechanics.

The grow/shrink scenarios are built from first principles on tiny
machines: a repair that leaves a running job narrow (grow headroom), an
arrival that only fits if a running donor narrows (shrink pressure).  The
transactional mechanics are pinned bit-exactly: an undone resize must
leave no trace in the availability profile or the driver's ledgers.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.arbitrator import QoSArbitrator
from repro.core.resources import TIME_EPS, ProcessorTimeRequest
from repro.errors import ConfigurationError
from repro.model.chain import TaskChain
from repro.model.job import Job
from repro.model.task import TaskSpec
from repro.resilience import simulator as sim_mod
from repro.resilience.driver import RenegotiationDriver
from repro.resilience.events import (
    CapacityEvent,
    FaultModel,
    OverrunEvent,
    generate_trace,
)
from repro.resilience.reconfig import (
    ReconfigCostModel,
    ReconfigEngine,
    ResizePolicy,
)
from repro.resilience.simulator import simulate_resilient
from repro.sim.arrivals import PoissonArrivals
from repro.sim.rng import RandomStreams
from repro.verify.auditor import ScheduleAuditor
from repro.workloads.synthetic import SyntheticParams


def mtask(name, procs, dur, deadline, mc=None):
    return TaskSpec(
        name,
        ProcessorTimeRequest(procs, dur),
        deadline=deadline,
        max_concurrency=mc if mc is not None else procs,
    )


def single(name, procs, dur, deadline, mc=None, release=0.0):
    chain = TaskChain((mtask(name, procs, dur, deadline, mc),), label="only")
    return Job(chains=(chain,), release=release, name=name)


def malleable_rig(capacity):
    arb = QoSArbitrator(capacity, malleable=True, keep_placements=True)
    return arb, RenegotiationDriver(arb)


def admit(arb, job):
    decision = arb.submit(job)
    assert decision.admitted and decision.placement is not None
    return decision.placement


def segments(arb, clip=0.0):
    """Profile segments with any fully-past history before ``clip`` dropped.

    Rollback is exact for the *future*; the profile is free to compact
    segments that end at or before the current time, so snapshots taken
    around a probe are compared from ``now`` onward.
    """
    out = []
    for start, end, used in arb.schedule.profile.segments():
        if end <= clip:
            continue
        out.append((max(start, clip), end, used))
    return out


class TestCostModelAndPolicy:
    def test_negative_terms_rejected(self):
        with pytest.raises(ConfigurationError):
            ReconfigCostModel(checkpoint=-1.0)
        with pytest.raises(ConfigurationError):
            ReconfigCostModel(redistribute=-0.1)

    def test_delay_scales_with_absolute_width_change(self):
        cost = ReconfigCostModel(checkpoint=2.0, redistribute=0.5)
        assert cost.delay(4, 8) == pytest.approx(4.0)
        assert cost.delay(8, 4) == pytest.approx(4.0)
        assert ReconfigCostModel().delay(1, 16) == 0.0

    def test_policy_directions(self):
        assert ResizePolicy.GROW.grows and not ResizePolicy.GROW.shrinks
        assert ResizePolicy.SHRINK.shrinks and not ResizePolicy.SHRINK.grows
        assert ResizePolicy.GROW_SHRINK.grows and ResizePolicy.GROW_SHRINK.shrinks
        assert not ResizePolicy.OFF.grows and not ResizePolicy.OFF.shrinks
        assert not ReconfigEngine(ResizePolicy.OFF).active
        assert ReconfigEngine(ResizePolicy.GROW).active


class TestGrow:
    """A repair doubles the machine under a job admitted at half width."""

    def _repaired_rig(self, checkpoint=0.0):
        arb, driver = malleable_rig(4)
        job = single("g", 4, 10.0, 100.0, mc=8)
        cp = admit(arb, job)
        assert cp.placements[0].processors == 4
        driver.register(job, cp)
        engine = ReconfigEngine(
            ResizePolicy.GROW, ReconfigCostModel(checkpoint)
        )
        engine.bind(driver)
        driver.on_capacity_change(CapacityEvent(2.0, 8))
        return arb, driver, engine, job

    def test_grow_on_repair_improves_finish(self):
        arb, driver, engine, job = self._repaired_rig()
        assert engine.grow_all(2.0) == [job.job_id]
        rec = driver._live[job.job_id]
        pl = rec.placement.placements[0]
        assert pl.processors == 8
        assert pl.start == pytest.approx(2.0)
        assert pl.end == pytest.approx(7.0)  # 40 area restarted 8-wide
        assert engine.ledger()["grows"] == 1
        # Restarted from scratch: the 2x4 partial run is spent AND wasted.
        assert rec.spent == pytest.approx(8.0)
        assert rec.wasted == pytest.approx(8.0)
        [record] = engine.records
        assert record.kind == "grow"
        assert record.old_width == 4 and record.new_width == 8
        report = ScheduleAuditor(malleable=True).audit_resizes(engine.records)
        assert not report.violations, report.summary()

    def test_grow_rejected_when_cost_eats_the_gain(self):
        """checkpoint 10 pushes the restart past the old finish: undo."""
        arb, driver, engine, job = self._repaired_rig(checkpoint=10.0)
        before = segments(arb)
        assert engine.grow_all(2.0) == []
        ledger = engine.ledger()
        assert ledger["grow_attempts"] == 1 and ledger["grows"] == 0
        rec = driver._live[job.job_id]
        assert rec.placement.placements[0].processors == 4
        assert rec.spent == 0.0 and rec.wasted == 0.0
        assert segments(arb) == before  # undo left no trace
        assert engine.records == []

    def test_grow_skips_jobs_without_width_headroom(self):
        """max_concurrency == current width: no probe, no attempt."""
        arb, driver = malleable_rig(4)
        job = single("r", 4, 10.0, 100.0, mc=4)
        driver.register(job, admit(arb, job))
        engine = ReconfigEngine(ResizePolicy.GROW)
        engine.bind(driver)
        driver.on_capacity_change(CapacityEvent(2.0, 8))
        assert engine.grow_all(2.0) == []
        assert engine.ledger()["grow_attempts"] == 0


class TestShrink:
    """A donor holding the whole machine vs an urgent narrow arrival."""

    def _pressed_rig(self):
        arb, driver = malleable_rig(8)
        donor = single("d", 8, 10.0, 100.0, mc=8)
        driver.register(donor, admit(arb, donor))
        engine = ReconfigEngine(ResizePolicy.SHRINK)
        engine.bind(driver)
        return arb, driver, engine, donor

    def test_shrink_to_admit_rescues_rejected_arrival(self):
        arb, driver, engine, donor = self._pressed_rig()
        # 4-wide for 2 time units, due by absolute time 8: impossible
        # while the donor holds all 8 processors until 10.
        arrival = single("a", 4, 2.0, 6.0, release=2.0)
        assert not arb.submit(arrival).admitted
        rescue = engine.shrink_to_admit(arrival, 2.0, arb)
        assert rescue is not None
        decision, donor_id = rescue
        assert decision.admitted and donor_id == donor.job_id
        ledger = engine.ledger()
        assert ledger["shrinks"] == 1 and ledger["shrink_admits"] == 1
        rec = driver._live[donor.job_id]
        assert rec.placement.placements[0].processors < 8
        [record] = engine.records
        assert record.kind == "shrink"
        report = ScheduleAuditor(malleable=True).audit_resizes(engine.records)
        assert not report.violations, report.summary()

    def test_shrink_undone_when_arrival_still_infeasible(self):
        arb, driver, engine, donor = self._pressed_rig()
        # Area 18 due 2.5 time units after release: needs width > 7, but
        # a shrunken donor frees at most 7 — unadmittable either way.
        hopeless = single("h", 9, 2.0, 2.5, mc=9, release=2.0)
        assert not arb.submit(hopeless).admitted
        before = segments(arb, clip=2.0)
        assert engine.shrink_to_admit(hopeless, 2.0, arb) is None
        ledger = engine.ledger()
        assert ledger["shrink_attempts"] >= 1
        assert ledger["shrinks"] == 0 and ledger["shrink_admits"] == 0
        # Probed shrink rolled back exactly (from ``now`` onward).
        assert segments(arb, clip=2.0) == before
        assert driver._live[donor.job_id].placement.placements[0].processors == 8

    def test_off_policy_never_probes(self):
        arb, driver, _engine, _donor = self._pressed_rig()
        off = ReconfigEngine(ResizePolicy.OFF)
        off.bind(driver)
        arrival = single("a", 4, 2.0, 6.0, release=2.0)
        assert not arb.submit(arrival).admitted
        assert off.shrink_to_admit(arrival, 2.0, arb) is None
        assert off.ledger()["shrink_attempts"] == 0


class TestResizeTxn:
    def _resizable_rig(self):
        arb, driver = malleable_rig(4)
        job = single("t", 4, 10.0, 100.0, mc=8)
        cp = admit(arb, job)
        driver.register(job, cp)
        driver.on_capacity_change(CapacityEvent(0.5, 8))
        return arb, driver, job, cp

    def test_undo_restores_profile_and_ledger_bit_exact(self):
        arb, driver, job, cp = self._resizable_rig()
        before = segments(arb)
        txn = driver.resize_remainder(
            job.job_id, 3.0, delay=1.0, first_min_width=8, first_max_width=8
        )
        assert txn is not None and txn.new_width == 8
        assert txn.new_cp.placements[0].start >= 4.0 - TIME_EPS  # now + delay
        txn.undo()
        rec = driver._live[job.job_id]
        assert rec.placement is cp
        assert rec.spent == 0.0 and rec.wasted == 0.0 and rec.resizes == 0
        assert segments(arb) == before

    def test_finalize_swaps_placement_and_charges_ledger(self):
        arb, driver, job, _cp = self._resizable_rig()
        txn = driver.resize_remainder(
            job.job_id, 3.0, delay=1.0, first_min_width=8, first_max_width=8
        )
        txn.finalize()
        rec = driver._live[job.job_id]
        assert rec.placement is txn.new_cp
        assert rec.spent == pytest.approx(12.0)  # 3 time units x 4 wide
        assert rec.wasted == pytest.approx(12.0)
        assert rec.resizes == 1
        report = ScheduleAuditor(
            malleable=True,
            match_config=False,
            ledger=False,
            profile_mode="bound",
        ).audit(arb.schedule, [job])
        assert report.ok, report.summary()

    def test_nothing_in_flight_returns_none(self):
        arb, driver, job, _cp = self._resizable_rig()
        assert driver.resize_remainder(job.job_id, 0.0, delay=0.0) is None
        assert driver.resize_remainder(job.job_id, 10.0, delay=0.0) is None
        assert driver.resize_remainder(999, 3.0, delay=0.0) is None


class TestResizeAndOverruns:
    def test_resize_moves_overrun_due_and_never_resurrects(self):
        """S3: after a resize, the old detection time must be dead.

        The simulator skips stale overrun heap entries by matching the
        popped time against ``overrun_due``; this pins the driver half —
        the due time moves with the resized placement, the pending set
        holds exactly the new time, and detection at the new time
        processes the restarted task cleanly.
        """
        arb, driver = malleable_rig(4)
        job = single("o", 4, 10.0, 100.0, mc=8)
        driver.register(job, admit(arb, job), overrun=OverrunEvent(0, 0, 2.0))
        assert driver.overrun_due(job.job_id) == pytest.approx(10.0)
        engine = ReconfigEngine(ResizePolicy.GROW)
        engine.bind(driver)
        driver.on_capacity_change(CapacityEvent(2.0, 8))
        assert engine.grow_all(2.0) == [job.job_id]
        due = driver.overrun_due(job.job_id)
        assert due == pytest.approx(7.0)
        assert driver.pending_overruns() == ((job.job_id, due),)
        assert driver.handle_overrun(job.job_id) is True


class TestSimulatorEventOrder:
    def test_same_instant_kind_order(self):
        """Overrun -> capacity -> arrival -> resize at equal timestamps.

        Resizes sort last so a same-instant arrival negotiates the
        no-resize machine — that ordering is what makes the disabled
        engine bit-identical to the resize-free simulator.
        """
        assert (
            sim_mod._OVERRUN
            < sim_mod._CAPACITY
            < sim_mod._ARRIVAL
            < sim_mod._RESIZE
        )

    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        jitter=st.floats(
            min_value=-2.5e-10, max_value=2.5e-10, allow_nan=False
        ),
    )
    def test_jittered_fault_times_stay_clean(self, seed, jitter):
        """S3 property: sub-TIME_EPS jitter on fault timestamps never
        breaks per-event verification or outcome conservation."""
        params = SyntheticParams(
            x=8, t=10.0, alpha=0.5, laxity=0.5, concurrency_factor=2.0
        )
        streams = RandomStreams(seed)
        arrivals = list(PoissonArrivals(8.0, streams).times(60))
        model = FaultModel(
            fault_rate=2e-3,
            fault_severity=0.5,
            mean_repair=30.0,
            overrun_prob=0.2,
            burst_rate=1e-3,
            burst_size=2,
        )
        trace = generate_trace(
            model,
            streams,
            horizon=arrivals[-1] + params.d2,
            base_capacity=16,
            n_arrivals=60,
        )
        from dataclasses import replace as dc_replace

        jittered = dc_replace(
            trace,
            capacity_events=tuple(
                dc_replace(ev, time=ev.time + jitter)
                for ev in trace.capacity_events
            ),
        )
        metrics = simulate_resilient(
            QoSArbitrator(16, malleable=True, keep_placements=True),
            lambda i, release: params.tunable_job(release),
            arrivals,
            jittered,
            verify=True,
            reconfig=ReconfigEngine(ResizePolicy.GROW_SHRINK),
        )
        r = metrics.resilience
        assert r["affected"] == (
            r["survived"] + r["dropped"] + r["deadline_misses"]
        )
        assert metrics.offered == 60 + r["burst_arrivals"]
