"""Perturbation events and trace generation: validation, determinism, CRN."""

import pytest

from repro.errors import ConfigurationError
from repro.resilience.events import (
    BurstEvent,
    CapacityEvent,
    FaultModel,
    OverrunEvent,
    PerturbationTrace,
    generate_trace,
)
from repro.sim.arrivals import PoissonArrivals
from repro.sim.rng import RandomStreams

MODEL = FaultModel(
    fault_rate=5e-4,
    fault_severity=0.25,
    mean_repair=200.0,
    overrun_prob=0.2,
    burst_rate=1e-4,
    burst_size=3,
)


class TestEventValidation:
    def test_capacity_event(self):
        with pytest.raises(ConfigurationError):
            CapacityEvent(time=float("nan"), new_capacity=4)
        with pytest.raises(ConfigurationError):
            CapacityEvent(time=1.0, new_capacity=0)

    def test_overrun_event(self):
        with pytest.raises(ConfigurationError):
            OverrunEvent(job_seq=-1, task_index=0, factor=2.0)
        with pytest.raises(ConfigurationError):
            OverrunEvent(job_seq=0, task_index=-1, factor=2.0)
        with pytest.raises(ConfigurationError):
            OverrunEvent(job_seq=0, task_index=0, factor=1.0)  # must exceed 1

    def test_burst_event(self):
        with pytest.raises(ConfigurationError):
            BurstEvent(time=-1.0, count=2)
        with pytest.raises(ConfigurationError):
            BurstEvent(time=1.0, count=0)

    def test_trace_ordering_enforced(self):
        with pytest.raises(ConfigurationError, match="strictly increasing"):
            PerturbationTrace(
                capacity_events=(CapacityEvent(2.0, 4), CapacityEvent(2.0, 8))
            )
        with pytest.raises(ConfigurationError, match="one overrun"):
            PerturbationTrace(
                overruns=(
                    OverrunEvent(3, 0, 2.0),
                    OverrunEvent(3, 1, 1.5),
                )
            )
        with pytest.raises(ConfigurationError, match="non-decreasing"):
            PerturbationTrace(
                bursts=(BurstEvent(5.0, 2), BurstEvent(4.0, 2))
            )

    def test_fault_model_validation(self):
        with pytest.raises(ConfigurationError):
            FaultModel(fault_rate=-1.0)
        with pytest.raises(ConfigurationError):
            FaultModel(fault_severity=0.0)
        with pytest.raises(ConfigurationError):
            FaultModel(fault_severity=1.5)
        with pytest.raises(ConfigurationError):
            FaultModel(overrun_prob=1.1)
        with pytest.raises(ConfigurationError):
            FaultModel(mean_repair=0.0)
        with pytest.raises(ConfigurationError):
            FaultModel(burst_size=0)


class TestTraceQueries:
    def test_empty(self):
        assert PerturbationTrace().empty
        assert FaultModel().empty
        assert not FaultModel(fault_rate=1e-3).empty
        assert not PerturbationTrace(bursts=(BurstEvent(1.0, 1),)).empty

    def test_capacity_at(self):
        trace = PerturbationTrace(
            capacity_events=(CapacityEvent(10.0, 4), CapacityEvent(20.0, 8))
        )
        assert trace.capacity_at(0.0, 16) == 16
        assert trace.capacity_at(10.0, 16) == 4
        assert trace.capacity_at(15.0, 16) == 4
        assert trace.capacity_at(25.0, 16) == 8

    def test_capacity_lost_integrates_deficit_only(self):
        trace = PerturbationTrace(
            capacity_events=(
                CapacityEvent(10.0, 12),  # lose 4 for 10 units
                CapacityEvent(20.0, 24),  # above base: no loss
                CapacityEvent(30.0, 16),  # back to base
            )
        )
        assert trace.capacity_lost(16, 40.0) == pytest.approx(40.0)
        assert trace.capacity_lost(16, 15.0) == pytest.approx(20.0)
        assert PerturbationTrace().capacity_lost(16, 100.0) == 0.0


class TestGenerateTrace:
    def test_deterministic_per_seed(self):
        a = generate_trace(MODEL, RandomStreams(11), 50_000.0, 32, 500)
        b = generate_trace(MODEL, RandomStreams(11), 50_000.0, 32, 500)
        c = generate_trace(MODEL, RandomStreams(12), 50_000.0, 32, 500)
        assert a == b
        assert a != c

    def test_nonempty_at_moderate_rates(self):
        trace = generate_trace(MODEL, RandomStreams(11), 50_000.0, 32, 500)
        assert trace.capacity_events
        assert trace.overruns
        assert trace.bursts

    def test_capacity_floored_at_one(self):
        severe = FaultModel(fault_rate=5e-3, fault_severity=1.0, mean_repair=5e3)
        trace = generate_trace(severe, RandomStreams(3), 20_000.0, 8, 0)
        assert trace.capacity_events
        assert all(ev.new_capacity >= 1 for ev in trace.capacity_events)

    def test_empty_model_yields_empty_trace(self):
        assert generate_trace(
            FaultModel(), RandomStreams(1), 1_000.0, 16, 100
        ).empty

    def test_substreams_disjoint_from_arrivals(self):
        """Drawing the trace never perturbs the arrival sequence (CRN)."""
        streams = RandomStreams(1999)
        arrivals_then_trace = list(PoissonArrivals(30.0, streams).times(200))
        generate_trace(MODEL, streams, 10_000.0, 32, 200)

        streams2 = RandomStreams(1999)
        generate_trace(MODEL, streams2, 10_000.0, 32, 200)
        trace_then_arrivals = list(PoissonArrivals(30.0, streams2).times(200))
        assert arrivals_then_trace == trace_then_arrivals

    def test_overrun_prob_change_preserves_pairing(self):
        """Raising overrun_prob adds overruns without reshuffling the
        factor/task-index a given arrival would have drawn."""
        low = generate_trace(
            MODEL, RandomStreams(7), 50_000.0, 32, 500
        ).overruns_by_seq()
        high = generate_trace(
            FaultModel(
                fault_rate=MODEL.fault_rate,
                fault_severity=MODEL.fault_severity,
                mean_repair=MODEL.mean_repair,
                overrun_prob=0.6,
                burst_rate=MODEL.burst_rate,
                burst_size=MODEL.burst_size,
            ),
            RandomStreams(7),
            50_000.0,
            32,
            500,
        ).overruns_by_seq()
        assert set(low) <= set(high)
        for seq, ev in low.items():
            assert high[seq] == ev

    def test_with_fault_rate_axis(self):
        model = FaultModel(overrun_prob=0.1)
        swept = model.with_fault_rate(3e-4)
        assert swept.fault_rate == 3e-4
        assert swept.overrun_prob == 0.1

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            generate_trace(MODEL, RandomStreams(1), float("inf"), 16, 10)
        with pytest.raises(ConfigurationError):
            generate_trace(MODEL, RandomStreams(1), 100.0, 0, 10)
        with pytest.raises(ConfigurationError):
            generate_trace(MODEL, RandomStreams(1), 100.0, 16, -1)
