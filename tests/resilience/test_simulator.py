"""ResilientSimulator: baseline identity, replay determinism, event mixing."""

import pytest

from repro.core.arbitrator import QoSArbitrator
from repro.resilience.events import (
    BurstEvent,
    CapacityEvent,
    FaultModel,
    OverrunEvent,
    PerturbationTrace,
    generate_trace,
)
from repro.resilience.simulator import simulate_resilient
from repro.sim.arrivals import PoissonArrivals
from repro.sim.rng import RandomStreams
from repro.sim.simulator import simulate_arrivals
from repro.workloads.sweep import SweepConfig, run_point
from repro.workloads.synthetic import SyntheticParams

PARAMS = SyntheticParams(x=16, t=25.0, alpha=0.25, laxity=0.5)
SEED = 7
N = 300
P = 32
INTERVAL = 30.0

MODEL = FaultModel(
    fault_rate=3e-4,
    fault_severity=0.375,
    mean_repair=300.0,
    overrun_prob=0.10,
    burst_rate=5e-5,
    burst_size=4,
)


def _arrivals(seed=SEED, n=N):
    return list(PoissonArrivals(INTERVAL, RandomStreams(seed)).times(n))


def _factory(system="tunable"):
    if system == "tunable":
        return lambda i, release: PARAMS.tunable_job(release)
    return lambda i, release: PARAMS.rigid_job(int(system[-1]), release)


def _perturbed_run(system="tunable", seed=SEED, n=N, model=MODEL, verify=True):
    arrivals = _arrivals(seed, n)
    trace = generate_trace(
        model,
        RandomStreams(seed),
        horizon=arrivals[-1] + PARAMS.d2,
        base_capacity=P,
        n_arrivals=n,
    )
    arbitrator = QoSArbitrator(P, keep_placements=True)
    metrics = simulate_resilient(
        arbitrator, _factory(system), arrivals, trace, verify=verify
    )
    return metrics, trace


class TestEmptyTraceIdentity:
    def test_bit_identical_to_baseline(self):
        """Regression: a zero-event trace reproduces the fault-free
        baseline metrics exactly, with an empty resilience block."""
        base_arb = QoSArbitrator(P)
        base = simulate_arrivals(
            base_arb,
            _factory(),
            PoissonArrivals(INTERVAL, RandomStreams(SEED)),
            N,
        )
        res_arb = QoSArbitrator(P)
        res = simulate_resilient(
            res_arb, _factory(), _arrivals(), PerturbationTrace()
        )
        assert res.resilience == {}
        assert res == base

    def test_run_point_empty_fault_model_is_baseline_path(self):
        """SweepConfig(faults=FaultModel()) dispatches to the baseline
        simulator — bit-identical to faults=None."""
        cfg_none = SweepConfig(params=PARAMS, processors=P, n_jobs=N, seed=SEED)
        cfg_empty = SweepConfig(
            params=PARAMS, processors=P, n_jobs=N, seed=SEED, faults=FaultModel()
        )
        for system in ("tunable", "shape1"):
            assert run_point(cfg_none, system) == run_point(cfg_empty, system)


class TestReplayDeterminism:
    def test_same_trace_twice_identical_metrics(self):
        """Property: replaying the identical trace yields identical
        metrics, with every placement verified after every event
        (verify=True audits the schedule and all live placements)."""
        first, trace_a = _perturbed_run(verify=True)
        second, trace_b = _perturbed_run(verify=True)
        assert trace_a == trace_b
        assert trace_a.capacity_events  # the trace actually perturbs
        assert trace_a.overruns
        assert first == second

    @pytest.mark.parametrize("system", ["tunable", "shape1", "shape2"])
    def test_all_systems_run_clean_under_verification(self, system):
        metrics, trace = _perturbed_run(system=system)
        r = metrics.resilience
        assert r["capacity_events"] == len(trace.capacity_events)
        assert r["events"] >= r["capacity_events"]
        # Every affected job is accounted for exactly once.
        assert r["affected"] == (
            r["survived"] + r["dropped"] + r["deadline_misses"]
        )
        assert 0.0 <= r["survival_rate"] <= 1.0
        assert 0.0 <= metrics.utilization <= 1.0 + 1e-9
        assert r["wasted_work"] >= 0.0


class TestEventMixing:
    def test_burst_arrivals_counted_and_submitted(self):
        trace = PerturbationTrace(bursts=(BurstEvent(500.0, 5),))
        arb = QoSArbitrator(P, keep_placements=True)
        metrics = simulate_resilient(arb, _factory(), _arrivals(n=50), trace)
        assert metrics.offered == 50 + 5
        assert metrics.resilience["burst_arrivals"] == 5

    def test_manual_combined_trace(self):
        """Hand-built capacity + overrun + burst events all apply."""
        arrivals = _arrivals(n=40)
        trace = PerturbationTrace(
            capacity_events=(
                CapacityEvent(arrivals[10], 20),
                CapacityEvent(arrivals[20], P),
            ),
            overruns=(OverrunEvent(2, 0, 1.8), OverrunEvent(5, 1, 2.5)),
            bursts=(BurstEvent(arrivals[15], 3),),
        )
        arb = QoSArbitrator(P, keep_placements=True)
        metrics = simulate_resilient(arb, _factory(), arrivals, trace)
        r = metrics.resilience
        assert r["capacity_events"] == 2
        assert r["burst_arrivals"] == 3
        assert r["overrun_events"] <= 2  # only admitted jobs can overrun
        assert r["affected"] >= r["overrun_events"]

    def test_tie_order_arrival_at_fault_instant_sees_new_capacity(self):
        """A job arriving exactly at a drop negotiates the post-fault
        machine: a 16-wide rigid job cannot be admitted on 12 processors."""
        tau = 100.0
        trace = PerturbationTrace(capacity_events=(CapacityEvent(tau, 12),))
        arb = QoSArbitrator(P, keep_placements=True)
        metrics = simulate_resilient(
            arb, _factory("shape1"), [0.0, tau], trace
        )
        assert metrics.admitted == 1  # only the pre-fault arrival
