"""RenegotiationDriver unit tests: carry, degrade, lose, overrun, account.

The Figure-4 workloads give every path quality 1.0 (the paper's Section 5
setting), so these tests build custom unequal-quality jobs to exercise the
degradation machinery: a wide path at quality 1.0 and a narrow fallback at
quality 0.5.
"""

import math

import pytest

from repro.core.arbitrator import QoSArbitrator
from repro.core.resources import TIME_EPS, ProcessorTimeRequest
from repro.errors import SimulationError
from repro.model.chain import TaskChain
from repro.model.job import Job
from repro.model.task import TaskSpec
from repro.resilience.driver import RenegotiationDriver
from repro.resilience.events import (
    CapacityEvent,
    OverrunEvent,
    PerturbationTrace,
)


def two_path_job(release=0.0):
    """Wide path (8 procs, quality 1.0) with a narrow 0.5-quality fallback."""
    wide = TaskChain(
        (
            TaskSpec(
                "wide", ProcessorTimeRequest(8, 10.0), deadline=40.0, quality=1.0
            ),
        ),
        label="wide",
    )
    narrow = TaskChain(
        (
            TaskSpec(
                "narrow",
                ProcessorTimeRequest(2, 40.0),
                deadline=100.0,
                quality=0.5,
            ),
        ),
        label="narrow",
    )
    return Job(chains=(wide, narrow), release=release, name="twopath")


def rigid_wide_job(release=0.0):
    """The wide path alone: no fallback to degrade onto."""
    wide = TaskChain(
        (
            TaskSpec(
                "wide", ProcessorTimeRequest(8, 10.0), deadline=40.0, quality=1.0
            ),
        ),
        label="wide",
    )
    return Job(chains=(wide,), release=release, name="rigidwide")


def chain2_job(d0=100.0, d1=100.0, w0=4, w1=4, release=0.0):
    """One rigid two-task chain (10 time units each)."""
    chain = TaskChain(
        (
            TaskSpec("t0", ProcessorTimeRequest(w0, 10.0), deadline=d0),
            TaskSpec("t1", ProcessorTimeRequest(w1, 10.0), deadline=d1),
        ),
        label="only",
    )
    return Job(chains=(chain,), release=release, name="chain2")


def admit(arbitrator, job):
    decision = arbitrator.submit(job)
    assert decision.admitted and decision.placement is not None
    return decision.placement


class TestCapacityEvents:
    def test_running_reservation_carried_when_it_fits(self):
        arb = QoSArbitrator(16, keep_placements=True)
        driver = RenegotiationDriver(arb)
        job = rigid_wide_job()
        driver.register(job, admit(arb, job))
        ev = CapacityEvent(2.0, 8)
        driver.on_capacity_change(ev)
        driver.check_consistency()
        driver.sweep_finished(math.inf)
        r = driver.finalize(PerturbationTrace(capacity_events=(ev,))).resilience
        assert r["carried"] == 1
        assert r["affected"] == 1
        assert r["survived"] == 1
        assert r["degraded"] == 0
        assert r["replans"] == 0
        assert r["wasted_work"] == 0.0

    def test_degrade_dont_drop_switches_to_fallback_path(self):
        """A drop below the wide path's width re-admits the narrow path:
        the job survives at lower quality instead of being dropped."""
        arb = QoSArbitrator(8, keep_placements=True)
        driver = RenegotiationDriver(arb)
        job = two_path_job()
        placement = admit(arb, job)
        assert placement.chain.label == "wide"  # granted at full quality
        driver.register(job, placement)
        ev = CapacityEvent(2.0, 4)
        driver.on_capacity_change(ev)
        driver.check_consistency()
        (live,) = driver.live_placements()
        assert live.chain.label == "narrow"
        driver.sweep_finished(math.inf)
        outcome = driver.finalize(PerturbationTrace(capacity_events=(ev,)))
        r = outcome.resilience
        assert r["dropped"] == 0
        assert r["survived"] == 1
        assert r["degraded"] == 1
        assert r["path_switches"] == 1
        assert r["survival_rate"] == 1.0
        assert r["quality_delta"] == pytest.approx(-0.5)
        # 2 time units x 8 processors of the wide attempt were discarded.
        assert r["wasted_work"] == pytest.approx(16.0)
        assert outcome.achieved_quality == pytest.approx(0.5)

    def test_no_path_fits_job_dropped_honestly(self):
        arb = QoSArbitrator(8, keep_placements=True)
        driver = RenegotiationDriver(arb)
        job = rigid_wide_job()
        driver.register(job, admit(arb, job))
        ev = CapacityEvent(2.0, 4)
        driver.on_capacity_change(ev)
        driver.check_consistency()
        assert driver.live_jobs == 0
        outcome = driver.finalize(PerturbationTrace(capacity_events=(ev,)))
        r = outcome.resilience
        assert r["dropped"] == 1
        assert r["survived"] == 0
        assert r["survival_rate"] == 0.0
        # Everything the job consumed before the fault is waste.
        assert r["wasted_work"] == pytest.approx(16.0)
        assert outcome.achieved_quality == pytest.approx(0.0)

    def test_pending_overrun_due_moves_with_replans(self):
        """Re-planning a pending placement moves its overrun detection."""
        arb = QoSArbitrator(8, keep_placements=True)
        driver = RenegotiationDriver(arb)
        blocker = rigid_wide_job()  # occupies all 8 procs over [0, 10)
        driver.register(blocker, admit(arb, blocker))
        victim = chain2_job()  # queued behind it: [10, 20), [20, 30)
        cp = admit(arb, victim)
        assert cp.placements[0].start == pytest.approx(10.0)
        driver.register(victim, cp, overrun=OverrunEvent(1, 0, 2.0))
        assert driver.overrun_due(victim.job_id) == pytest.approx(20.0)

        driver.on_capacity_change(CapacityEvent(2.0, 4))
        driver.check_consistency()
        # The blocker (8-wide, no fallback) is gone; the victim re-plans
        # onto the now-empty 4-processor machine from the event time.
        assert driver.live_jobs == 1
        assert driver.overrun_due(victim.job_id) == pytest.approx(12.0)
        assert driver.pending_overruns() == ((victim.job_id, 12.0),)


class TestOverruns:
    def test_overrun_replanned_with_dilated_duration(self):
        arb = QoSArbitrator(8, keep_placements=True)
        driver = RenegotiationDriver(arb)
        job = chain2_job()
        driver.register(job, admit(arb, job), overrun=OverrunEvent(0, 0, 2.0))
        due = driver.overrun_due(job.job_id)
        assert due == pytest.approx(10.0)
        assert driver.handle_overrun(job.job_id) is True
        driver.check_consistency()
        (live,) = driver.live_placements()
        # The interrupted task restarts at the detection instant with its
        # revealed duration (10 * 2); its successor follows.
        assert live.placements[0].start == pytest.approx(10.0)
        assert live.placements[0].duration == pytest.approx(20.0)
        assert live.finish == pytest.approx(40.0)
        assert driver.overrun_due(job.job_id) is None  # latent consumed
        driver.sweep_finished(math.inf)
        r = driver.finalize(PerturbationTrace(overruns=(OverrunEvent(0, 0, 2.0),))).resilience
        assert r["overrun_events"] == 1
        assert r["deadline_misses"] == 0
        assert r["survived"] == 1
        assert r["replans"] == 1
        assert r["path_switches"] == 0

    def test_unrecoverable_overrun_is_deadline_miss(self):
        arb = QoSArbitrator(8, keep_placements=True)
        driver = RenegotiationDriver(arb)
        job = chain2_job(d0=12.0, d1=30.0)
        driver.register(job, admit(arb, job), overrun=OverrunEvent(0, 0, 3.0))
        assert driver.handle_overrun(job.job_id) is False
        driver.check_consistency()
        assert driver.live_jobs == 0
        r = driver.finalize(
            PerturbationTrace(overruns=(OverrunEvent(0, 0, 3.0),))
        ).resilience
        assert r["deadline_misses"] == 1
        assert r["dropped"] == 0
        assert r["survival_rate"] == 0.0
        # t0's first (discarded) execution: 10 time units x 4 processors.
        assert r["wasted_work"] == pytest.approx(40.0)


class TestAccounting:
    def test_unperturbed_job_spends_exactly_its_area(self):
        arb = QoSArbitrator(8, keep_placements=True)
        driver = RenegotiationDriver(arb)
        job = chain2_job()
        driver.register(job, admit(arb, job))
        driver.sweep_finished(math.inf)
        outcome = driver.finalize(PerturbationTrace())
        r = outcome.resilience
        assert r["affected"] == 0
        assert r["survival_rate"] == 1.0
        assert r["wasted_work"] == 0.0
        assert outcome.utilization == pytest.approx(arb.utilization())

    def test_finalize_with_live_jobs_raises(self):
        arb = QoSArbitrator(8, keep_placements=True)
        driver = RenegotiationDriver(arb)
        job = chain2_job()
        driver.register(job, admit(arb, job))
        with pytest.raises(SimulationError, match="still live"):
            driver.finalize(PerturbationTrace())


class TestOverrunAtTaskFinishBoundary:
    """Regression for the remainder-slicing completed-count clamp.

    A capacity event landing within TIME_EPS of an overrun-armed task's
    reserved finish must NOT count that task as completed: the overrun has
    not been detected yet, so the task's true duration is still unknown and
    the re-plan must re-offer it.  Before the clamp, the ``start < tau``
    slice counted it done, the re-plan dropped it, and the armed overrun
    silently disarmed — the job then "finished" at its optimistic length.
    """

    @pytest.mark.parametrize(
        "offset", [-TIME_EPS / 2, 0.0, TIME_EPS / 2]
    )
    def test_event_at_armed_finish_keeps_task_and_overrun(self, offset):
        arb = QoSArbitrator(8, keep_placements=True)
        driver = RenegotiationDriver(arb)
        blocker = Job(
            chains=(
                TaskChain(
                    (
                        TaskSpec(
                            "b", ProcessorTimeRequest(6, 30.0), deadline=100.0
                        ),
                    ),
                    label="only",
                ),
            ),
            release=0.0,
            name="blocker",
        )
        driver.register(blocker, admit(arb, blocker))  # [0, 30) x 6
        victim = chain2_job(w0=2, w1=2, release=5.0)  # [5,15), [15,25) x 2
        driver.register(
            victim, admit(arb, victim), overrun=OverrunEvent(0, 0, 2.0)
        )
        assert driver.overrun_due(victim.job_id) == pytest.approx(15.0)

        # Capacity drops to 7 exactly at (within eps of) t0's finish: the
        # blocker carries (6 <= 7) but the victim can't (only 1 free), so
        # it re-plans — and must re-offer BOTH tasks, t0 included.
        driver.on_capacity_change(CapacityEvent(15.0 + offset, 7))
        driver.check_consistency()
        rec = driver._live[victim.job_id]
        assert len(rec.placement.placements) == 2
        due = driver.overrun_due(victim.job_id)
        assert due is not None  # overrun still armed on the re-offered t0
        assert due == pytest.approx(rec.placement.placements[0].end)
        assert driver.handle_overrun(victim.job_id) is True
