"""Regression for the committed reconfig-experiment claim.

The committed rate 3e-4 is the regime where mid-execution malleability
pays for itself at *every* committed reconfiguration cost — that claim is
what EXPERIMENTS.md and the corpus entries rest on, so it is pinned here
at full committed scale (n=300, one rate, all three costs; ~4 simulation
points).
"""

import pytest

from repro.experiments.reconfig import (
    DEFAULT_RECONFIG_COSTS,
    reconfig_benefit,
    render_reconfig,
    run_reconfig,
)
from repro.experiments.registry import EXPERIMENTS

COMMITTED_RATE = 3e-4


@pytest.fixture(scope="module")
def result():
    return run_reconfig(rates=(COMMITTED_RATE,), costs=DEFAULT_RECONFIG_COSTS)


class TestCommittedClaim:
    def test_resize_beats_no_resize_at_every_committed_cost(self, result):
        off = reconfig_benefit(result.off[COMMITTED_RATE])
        for cost in result.costs:
            on = reconfig_benefit(result.on[(COMMITTED_RATE, cost)])
            assert on > off, (
                f"grow/shrink lost at cost {cost}: {on} <= {off}"
            )

    def test_both_directions_fire_at_zero_cost(self, result):
        r = result.on[(COMMITTED_RATE, 0.0)].resilience
        assert r["grows"] >= 1
        assert r["shrink_admits"] >= 1

    def test_costly_resizes_are_charged(self, result):
        r = result.on[(COMMITTED_RATE, 8.0)].resilience
        assert r["resizes"] >= 1
        assert r["resize_cost"] > 0.0

    def test_off_arm_has_no_resize_activity(self, result):
        r = result.off[COMMITTED_RATE].resilience
        assert r.get("resizes", 0) == 0
        assert r.get("resize_cost", 0.0) == 0.0


class TestRegistryAndRender:
    def test_registered(self):
        assert "reconfig" in EXPERIMENTS

    def test_render_mentions_the_axes(self, result):
        text = render_reconfig(result)
        assert "grow" in text
        assert "benefit" in text
        assert "0.0003" in text
