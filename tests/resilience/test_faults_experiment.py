"""The faults experiment: tunability dominates survival at committed defaults."""

import pytest

from repro.experiments.faults import (
    DEFAULT_FAULT_MODEL,
    DEFAULT_FAULT_RATES,
    render_faults,
    run_faults,
)
from repro.experiments.registry import EXPERIMENTS


@pytest.fixture(scope="module")
def result():
    return run_faults(n_jobs=800)


class TestFaultsExperiment:
    def test_committed_defaults_perturb(self):
        assert DEFAULT_FAULT_MODEL.overrun_prob > 0
        assert DEFAULT_FAULT_MODEL.burst_rate > 0
        assert 0.0 in DEFAULT_FAULT_RATES  # the overruns/bursts-only point
        assert any(r > 0 for r in DEFAULT_FAULT_RATES)

    def test_structure(self, result):
        assert result.axis == "fault_rate"
        assert result.values == tuple(DEFAULT_FAULT_RATES)
        assert result.systems == ("tunable", "shape1", "shape2")
        for value in result.values:
            for system in result.systems:
                r = result.rows[value][system].resilience
                assert r["affected"] == (
                    r["survived"] + r["dropped"] + r["deadline_misses"]
                )

    def test_tunable_survival_dominates_both_rigids(self, result):
        """The experiment's headline claim, at every committed rate."""
        for value in result.values:
            row = result.rows[value]
            tun = row["tunable"].resilience["survival_rate"]
            assert tun >= row["shape1"].resilience["survival_rate"], value
            assert tun >= row["shape2"].resilience["survival_rate"], value

    def test_only_tunable_switches_paths(self, result):
        switched = 0
        for value in result.values:
            row = result.rows[value]
            switched += row["tunable"].resilience["path_switches"]
            assert row["shape1"].resilience["path_switches"] == 0
            assert row["shape2"].resilience["path_switches"] == 0
        assert switched > 0

    def test_capacity_lost_grows_with_fault_rate(self, result):
        losses = [
            result.rows[v]["tunable"].resilience["capacity_lost"]
            for v in result.values
        ]
        assert losses[0] == 0.0  # rate 0: overruns/bursts only
        assert losses[-1] > 0.0

    def test_registered(self):
        assert "faults" in EXPERIMENTS

    def test_render(self, result):
        text = render_faults(result)
        assert "survival" in text
        assert "switches" in text
        # Small rates must not be swallowed by fixed-precision formatting.
        assert "0.0003" in text
