"""Tests for the self-tuning scan-backend controller."""
