"""Property: backend-switch schedules are decision-invisible.

The tentpole's safety argument — the adaptive controller may consume
nondeterministic wall-clock signals because every reachable switch
sequence yields bit-identical decisions — is pinned here as a hypothesis
property over random workloads and random *forced* switch schedules,
including the worst case of a different back-end for every single
profile query.  Coverage spans rigid and malleable (commit/rollback-
heavy) workloads, and the resilience driver's capacity-fault
interleavings where the controller is transplanted across schedule
rebuilds mid-run.
"""

from __future__ import annotations

import dataclasses

from hypothesis import given, strategies as st

from repro.autotune import SWITCHABLE_BACKENDS
from repro.resilience.events import FaultModel
from repro.verify.fuzz import random_case, run_case, switch_failures
from repro.workloads.sweep import SweepConfig, run_point

import random


def _case(seed: int, malleable: bool):
    return random_case(
        random.Random(seed), max_jobs=6, malleable=malleable
    )


switch_schedules = st.lists(
    st.sampled_from(SWITCHABLE_BACKENDS), min_size=1, max_size=8
).map(tuple)


@given(seed=st.integers(0, 2**32 - 1), schedule=switch_schedules,
       malleable=st.booleans())
def test_any_forced_switch_schedule_matches_every_static_backend(
    seed, schedule, malleable
):
    """Random schedules (incl. per-query switching via 1-cycles and long
    mixed cycles) replay bit-identical to every static back-end."""
    case = _case(seed, malleable)
    switched, audit_fails = run_case(
        case, backend="adaptive", forced_switches=schedule
    )
    assert not audit_fails
    for backend in SWITCHABLE_BACKENDS:
        static, _ = run_case(case, backend=backend, audit=False)
        assert switched == static, (
            f"forced schedule {schedule} diverged from static {backend} "
            f"on case {case.case_id}"
        )


@given(seed=st.integers(0, 2**32 - 1))
def test_unforced_adaptive_matches_scalar_on_rollback_heavy_cases(seed):
    """The controller's own (signal-driven) switching is also invisible —
    on malleable cases, whose shrink search is commit/rollback heavy."""
    case = _case(seed, malleable=True)
    adaptive, audit_fails = run_case(case, backend="adaptive")
    assert not audit_fails
    static, _ = run_case(case, backend="scalar", audit=False)
    assert adaptive == static


@given(seed=st.integers(0, 2**31 - 1))
def test_switch_failures_check_is_clean_on_random_cases(seed):
    """The fuzz harness's own adversarial-switch check finds nothing on
    healthy code (it is wired into every check_case call)."""
    case = _case(seed, malleable=seed % 3 == 0)
    assert switch_failures(case) == []


def _fault_metrics(backend: str) -> dict:
    config = SweepConfig(
        n_jobs=60,
        seed=7,
        malleable=True,
        backend=backend,
        faults=FaultModel(
            fault_rate=0.02,
            fault_severity=0.3,
            mean_repair=20.0,
            overrun_prob=0.1,
            overrun_excess=0.25,
            burst_rate=0.005,
            burst_size=4,
        ),
    )
    return run_point(config, "tunable").as_dict()


def test_adaptive_identical_to_scalar_across_capacity_faults():
    """Full resilient simulation (capacity drops/repairs, overruns,
    bursts): the adaptive run — controller transplanted across every
    capacity-event schedule rebuild — matches the static scalar run on
    every decision-derived metric (perf/wall-clock telemetry aside)."""
    adaptive = _fault_metrics("adaptive")
    scalar = _fault_metrics("scalar")
    skip = ("perf", "wall")
    keys = [
        k
        for k in adaptive
        if not any(s in k for s in skip)
    ]
    assert keys, "expected decision-derived metrics to compare"
    for k in keys:
        assert adaptive[k] == scalar[k], f"metric {k} diverged"


def test_adaptive_identical_to_scalar_with_faults_and_rigid_jobs():
    config = SweepConfig(
        n_jobs=50,
        seed=11,
        backend="adaptive",
        faults=FaultModel(fault_rate=0.03, fault_severity=0.4,
                          mean_repair=15.0),
    )
    adaptive = run_point(config, "shape1").as_dict()
    scalar = run_point(
        dataclasses.replace(config, backend="scalar"), "shape1"
    ).as_dict()
    for k in adaptive:
        if "perf" in k or "wall" in k:
            continue
        assert adaptive[k] == scalar[k], f"metric {k} diverged"
