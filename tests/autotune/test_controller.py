"""Unit tests of :class:`repro.autotune.AdaptiveController`.

These exercise the controller against a real
:class:`~repro.core.profile.AvailabilityProfile` (the counters it reads
are the always-on :class:`~repro.perf.ProfileStats`), but in isolation
from the arbitrator: regime classification, hysteresis (confirmation
streaks + dwell), the asymmetric tree entry/exit criterion, the forced
switch schedule hook, lifecycle across capacity swaps, and telemetry.
Decision-identity under switching is covered by
``test_switch_equivalence.py``.
"""

from __future__ import annotations

import pytest

from repro.autotune import SWITCHABLE_BACKENDS, AdaptiveController, AutotuneConfig
from repro.core import kernels
from repro.core.first_fit import earliest_fit
from repro.core.profile import (
    AvailabilityProfile,
    KERNEL_MIN_SEGMENTS,
    VECTOR_MIN_SEGMENTS,
)
from repro.errors import ConfigurationError


def _fragmented_profile(n_segments: int, capacity: int = 64) -> AvailabilityProfile:
    profile = AvailabilityProfile(capacity, backend="adaptive")
    for i in range(n_segments):
        profile.reserve(float(i), float(i) + 1.0, 1 + (i % 3))
    return profile


def _probe(profile: AvailabilityProfile, n: int, procs: int = 1) -> None:
    """Drive ``n`` query-only probes through the adaptive scan path."""
    for _ in range(n):
        earliest_fit(profile, procs, 1.0, 0.0)


# ---------------------------------------------------------------------------
# Config validation
# ---------------------------------------------------------------------------


def test_config_rejects_bad_knobs():
    with pytest.raises(ConfigurationError):
        AutotuneConfig(eval_interval=0)
    with pytest.raises(ConfigurationError):
        AutotuneConfig(confirm=0)
    with pytest.raises(ConfigurationError):
        AutotuneConfig(min_dwell=-1)
    with pytest.raises(ConfigurationError):
        AutotuneConfig(ewma_alpha=0.0)
    with pytest.raises(ConfigurationError):
        AutotuneConfig(ewma_alpha=1.5)


def test_controller_rejects_bad_initial_backend():
    with pytest.raises(ConfigurationError):
        AdaptiveController(initial="auto")
    with pytest.raises(ConfigurationError):
        AdaptiveController(initial="adaptive")


def test_switchable_backends_are_concrete():
    assert "auto" not in SWITCHABLE_BACKENDS
    assert "adaptive" not in SWITCHABLE_BACKENDS


# ---------------------------------------------------------------------------
# Regime classification
# ---------------------------------------------------------------------------


def test_small_profile_stays_scalar():
    profile = _fragmented_profile(50)
    _probe(profile, 200)
    assert profile.autotune.current == "scalar"
    assert profile.autotune.switches == 0


def test_large_profile_leaves_scalar():
    profile = _fragmented_profile(3000)
    _probe(profile, 300)
    controller = profile.autotune
    assert controller.current != "scalar"
    expected = (
        "kernel" if kernels.kernel_backend() == "compiled" else "vector"
    )
    # Shallow probes (they hit the first gap) never justify the tree.
    assert controller.current == expected
    assert controller.switches >= 1


def test_query_dominated_deep_probes_enter_tree():
    profile = _fragmented_profile(2000, capacity=8)
    # Probes demanding more processors than any backlog segment offers
    # must scan deep before finding the post-backlog gap: the depth
    # signal exceeds tree_min_depth and mutations are zero.
    for _ in range(300):
        earliest_fit(profile, 8, 1.0, 0.0)
    assert profile.autotune.current == "tree"


def test_tree_exit_is_mutation_driven_not_depth_driven():
    profile = _fragmented_profile(2000, capacity=8)
    for _ in range(300):
        earliest_fit(profile, 8, 1.0, 0.0)
    controller = profile.autotune
    assert controller.current == "tree"
    switches_at_entry = controller.switches
    # On the tree, probe_segments counts visited tree nodes — depth
    # collapses to O(log S).  More query-only probes must NOT bounce the
    # controller off the tree (the asymmetric-hysteresis regression).
    for _ in range(600):
        earliest_fit(profile, 8, 1.0, 0.0)
    assert controller.current == "tree"
    assert controller.switches == switches_at_entry
    # A mutation-heavy window does evict the tree.
    t = float(len(profile) + 100)
    for i in range(600):
        profile.reserve(t + i, t + i + 1.0, 1)
        earliest_fit(profile, 8, 1.0, 0.0)
    assert controller.current != "tree"


def test_hysteresis_confirmation_and_dwell():
    config = AutotuneConfig(eval_interval=8, confirm=3, min_dwell=64)
    controller = AdaptiveController(config)
    profile = AvailabilityProfile(64, backend="adaptive")
    profile.adopt_autotune(controller)
    for i in range(3000):
        profile.reserve(float(i), float(i) + 1.0, 1 + (i % 3))
    # One full evaluation window with a non-scalar target is not enough:
    # confirm=3 windows must agree before the switch commits.
    for _ in range(2 * 8):
        earliest_fit(profile, 1, 1.0, 0.0)
    assert controller.current == "scalar"
    for _ in range(4 * 8):
        earliest_fit(profile, 1, 1.0, 0.0)
    assert controller.current != "scalar"
    # After the switch the dwell floor holds even if the target flips.
    switched_at = profile.stats.probes
    assert controller.switch_log[-1][0] <= switched_at
    assert controller.switches == 1


def test_latency_spike_forces_early_reevaluation():
    config = AutotuneConfig(eval_interval=1000, confirm=1)
    controller = AdaptiveController(config)
    for _ in range(50):
        controller.observe_decision(1e-5)
    baseline = controller._eval_probes
    controller.observe_decision(1e-2)  # 1000x the EWMA
    assert controller._eval_probes == baseline - config.eval_interval
    assert controller.decision_ewma_s > 1e-5


def test_observe_batch_amortizes_per_job():
    controller = AdaptiveController()
    controller.observe_batch(10, 1e-3)
    assert controller.decisions == 1
    assert controller.decision_ewma_s == pytest.approx(1e-4)
    controller.observe_batch(0, 1.0)  # empty batch is a no-op
    assert controller.decisions == 1


# ---------------------------------------------------------------------------
# Forced schedules and lifecycle
# ---------------------------------------------------------------------------


def test_forced_schedule_round_robins_per_query():
    controller = AdaptiveController()
    profile = AvailabilityProfile(4, backend="adaptive")
    profile.adopt_autotune(controller)
    controller.force_backends(("tree", "scalar", "kernel"))
    served = [controller.backend_for(profile) for _ in range(7)]
    assert served == [
        "tree", "scalar", "kernel", "tree", "scalar", "kernel", "tree"
    ]
    controller.force_backends(())  # restore adaptive operation
    assert controller.forced is None
    assert controller.backend_for(profile) == controller.current


def test_forced_schedule_rejects_unknown_backend():
    controller = AdaptiveController()
    with pytest.raises(ConfigurationError):
        controller.force_backends(("scalar", "auto"))


def test_adopt_autotune_requires_adaptive_profile():
    profile = AvailabilityProfile(4, backend="scalar")
    with pytest.raises(ConfigurationError):
        profile.adopt_autotune(AdaptiveController())


def test_controller_survives_capacity_swap_rebind():
    profile = _fragmented_profile(3000)
    _probe(profile, 300)
    controller = profile.autotune
    chosen = controller.current
    assert chosen != "scalar"
    # Capacity event: fresh profile, transplanted controller (what
    # QoSArbitrator.adopt_schedule does).  Choice and history survive;
    # the evaluation window re-baselines onto the new counters.
    fresh = AvailabilityProfile(32, backend="adaptive")
    fresh.adopt_autotune(controller)
    assert fresh.autotune is controller
    assert controller.current == chosen
    assert fresh.scan_backend() == chosen


def test_stats_reset_rebases_instead_of_stalling():
    profile = _fragmented_profile(3000)
    _probe(profile, 300)
    controller = profile.autotune
    profile.stats.reset()
    # delta < 0 must re-baseline, after which evaluation resumes.
    _probe(profile, 300)
    assert controller.evals > 0
    assert controller.current in SWITCHABLE_BACKENDS


def test_copy_gets_fresh_controller_with_same_choice():
    profile = _fragmented_profile(3000)
    _probe(profile, 300)
    clone = profile.copy()
    assert clone.backend == "adaptive"
    assert clone.autotune is not profile.autotune
    assert clone.autotune.current == profile.autotune.current


# ---------------------------------------------------------------------------
# Telemetry
# ---------------------------------------------------------------------------


def test_snapshot_keys_and_switch_log():
    profile = _fragmented_profile(3000)
    _probe(profile, 300)
    controller = profile.autotune
    snap = controller.snapshot()
    assert snap["autotune_backend"] == controller.current
    assert snap["autotune_switches"] == controller.switches
    assert snap["autotune_evals"] == controller.evals
    assert controller.switch_log, "expected at least one committed switch"
    probes, src, dst = controller.switch_log[0]
    assert src == "scalar" and dst == controller.current
    assert probes > 0
