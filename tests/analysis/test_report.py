"""Unit tests for markdown/JSON report generation."""

import json

import pytest

from repro.analysis.report import (
    benefit_summary,
    sweep_from_json_summary,
    sweep_to_json,
    sweep_to_markdown,
)
from repro.errors import ConfigurationError
from repro.workloads.sweep import SweepConfig, run_sweep


@pytest.fixture(scope="module")
def sweep():
    return run_sweep("interval", [20.0, 50.0], SweepConfig(n_jobs=50, seed=5))


class TestMarkdown:
    def test_table_shape(self, sweep):
        md = sweep_to_markdown(sweep, "throughput")
        lines = md.strip().split("\n")
        assert lines[0].startswith("| interval |")
        assert lines[1].startswith("|---")
        assert len(lines) == 2 + len(sweep.values)

    def test_axis_values_rendered(self, sweep):
        md = sweep_to_markdown(sweep)
        assert "| 20 |" in md
        assert "| 50 |" in md

    def test_float_precision(self, sweep):
        md = sweep_to_markdown(sweep, "utilization", precision=2)
        # Utilizations are floats formatted with 2 decimals.
        body = md.strip().split("\n")[2]
        cells = [c.strip() for c in body.split("|") if c.strip()]
        assert all("." in c for c in cells[1:])


class TestJsonRoundTrip:
    def test_roundtrip_validates(self, sweep):
        text = sweep_to_json(sweep)
        payload = sweep_from_json_summary(text)
        assert payload["axis"] == "interval"
        assert payload["config"]["n_jobs"] == 50
        assert set(payload["systems"]) == set(sweep.systems)

    def test_metrics_content(self, sweep):
        payload = sweep_from_json_summary(sweep_to_json(sweep))
        bucket = payload["metrics"]["20"]
        assert bucket["tunable"]["offered"] == 50

    def test_missing_key_rejected(self, sweep):
        payload = json.loads(sweep_to_json(sweep))
        del payload["metrics"]
        with pytest.raises(ConfigurationError):
            sweep_from_json_summary(json.dumps(payload))

    def test_missing_system_rejected(self, sweep):
        payload = json.loads(sweep_to_json(sweep))
        del payload["metrics"]["20"]["shape1"]
        with pytest.raises(ConfigurationError):
            sweep_from_json_summary(json.dumps(payload))


class TestBenefitSummary:
    def test_rows(self, sweep):
        rows = benefit_summary(sweep, "throughput")
        assert len(rows) == 2
        for row in rows:
            t = row["tunable"]
            assert row["benefit_over_shape1"] == pytest.approx(
                t - (t - row["benefit_over_shape1"])
            )
            assert "benefit_over_shape2" in row

    def test_requires_tunable(self, sweep):
        limited = run_sweep(
            "interval", [30.0], SweepConfig(n_jobs=20, seed=5), systems=("shape1",)
        )
        with pytest.raises(ConfigurationError):
            benefit_summary(limited)
