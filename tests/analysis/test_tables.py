"""Unit tests for table rendering."""

import pytest

from repro.analysis.tables import format_sweep, format_table
from repro.errors import ConfigurationError
from repro.workloads.sweep import SweepConfig, run_sweep


class TestFormatTable:
    def test_basic(self):
        text = format_table([{"a": 1, "b": 2.5}, {"a": 10, "b": 0.125}])
        lines = text.strip().split("\n")
        assert lines[0].split() == ["a", "b"]
        assert "2.500" in text
        assert "0.125" in lines[-1]

    def test_empty(self):
        assert "(no rows)" in format_table([])

    def test_title(self):
        assert format_table([{"a": 1}], title="T").startswith("T\n")

    def test_column_selection_and_order(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b", "a"])
        assert text.strip().split("\n")[0].split() == ["b", "a"]

    def test_missing_cells(self):
        text = format_table([{"a": 1}, {"b": 2}], columns=["a", "b"])
        assert "-" in text

    def test_precision(self):
        text = format_table([{"x": 1 / 3}], precision=1)
        assert "0.3" in text and "0.33" not in text

    def test_no_columns_rejected(self):
        with pytest.raises(ConfigurationError):
            format_table([{"a": 1}], columns=[])

    def test_alignment(self):
        text = format_table([{"metric": 1}, {"metric": 100}])
        lines = text.strip().split("\n")
        assert len(lines[2]) == len(lines[3])


class TestFormatSweep:
    def test_renders_systems_as_columns(self):
        sweep = run_sweep(
            "interval", [25.0, 50.0], SweepConfig(n_jobs=40, seed=1)
        )
        text = format_sweep(sweep, "throughput")
        header = text.strip().split("\n")[1]
        assert "tunable" in header
        assert "shape1" in header
        assert "interval" in header
