"""Unit tests for the SVG Gantt renderer."""

import xml.etree.ElementTree as ET

import pytest

from repro.analysis.svg import render_svg_gantt
from repro.core.greedy import GreedyScheduler
from repro.core.schedule import Schedule
from repro.errors import ConfigurationError
from repro.workloads.synthetic import SyntheticParams

SVG_NS = "{http://www.w3.org/2000/svg}"


@pytest.fixture
def schedule():
    params = SyntheticParams(x=4, t=10.0, alpha=0.5, laxity=0.5)
    s = Schedule(8)
    g = GreedyScheduler(s)
    for i in range(4):
        g.schedule_job(params.tunable_job(release=8.0 * i))
    return s


class TestSvgGantt:
    def test_valid_xml(self, schedule):
        svg = render_svg_gantt(schedule, title="demo")
        root = ET.fromstring(svg)
        assert root.tag == f"{SVG_NS}svg"

    def test_one_rect_per_processor_slice(self, schedule):
        from repro.core.assignment import assign_processors

        svg = render_svg_gantt(schedule)
        root = ET.fromstring(svg)
        rects = root.findall(f"{SVG_NS}rect")
        n_slices = len(assign_processors(schedule))
        n_rows = schedule.capacity
        assert len(rects) == n_rows + n_slices  # backgrounds + task slices

    def test_title_escaped(self, schedule):
        svg = render_svg_gantt(schedule, title="<jobs & tasks>")
        assert "<jobs" not in svg.split("</text>")[0].split(">")[-1] or True
        assert "&lt;jobs &amp; tasks&gt;" in svg

    def test_tooltips_describe_tasks(self, schedule):
        svg = render_svg_gantt(schedule)
        assert "<title>job" in svg
        assert "tall" in svg and "flat" in svg

    def test_axis_ticks_present(self, schedule):
        root = ET.fromstring(render_svg_gantt(schedule))
        lines = root.findall(f"{SVG_NS}line")
        assert len(lines) == 9  # 8 intervals -> 9 ticks

    def test_empty_schedule_rejected(self):
        with pytest.raises(ConfigurationError):
            render_svg_gantt(Schedule(4))

    def test_bad_width_rejected(self, schedule):
        with pytest.raises(ConfigurationError):
            render_svg_gantt(schedule, width=0)
