"""Unit tests for ASCII charts."""

import math

import pytest

from repro.analysis.plots import ascii_chart, sweep_chart
from repro.errors import ConfigurationError
from repro.workloads.sweep import SweepConfig, run_sweep


class TestAsciiChart:
    def test_basic_render(self):
        text = ascii_chart([0, 1, 2], {"s": [0.0, 1.0, 2.0]}, width=20, height=5)
        assert "o" in text
        assert "s=s" not in text  # legend format is glyph=name
        assert "o=s" in text

    def test_multiple_series_glyphs(self):
        text = ascii_chart(
            [0, 1], {"a": [0, 1], "b": [1, 0]}, width=10, height=4
        )
        assert "o=a" in text and "x=b" in text
        assert "o" in text and "x" in text

    def test_bounds_in_labels(self):
        text = ascii_chart([0, 10], {"s": [5.0, 7.0]}, width=10, height=4)
        assert "x: [0, 10]" in text
        assert "y: [5, 7]" in text

    def test_constant_series(self):
        ascii_chart([0, 1], {"s": [3.0, 3.0]}, width=8, height=3)

    def test_nan_skipped(self):
        text = ascii_chart([0, 1, 2], {"s": [1.0, math.nan, 2.0]})
        assert "o" in text

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ascii_chart([], {})
        with pytest.raises(ConfigurationError):
            ascii_chart([0, 1], {"s": [1.0]})
        with pytest.raises(ConfigurationError):
            ascii_chart([0], {"s": [math.nan]})


class TestSweepChart:
    def test_renders(self):
        sweep = run_sweep("interval", [25.0, 50.0], SweepConfig(n_jobs=40, seed=1))
        text = sweep_chart(sweep, "throughput")
        assert "tunable" in text
        assert "throughput vs interval" in text
