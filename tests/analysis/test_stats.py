"""Unit tests for summary statistics."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.stats import bootstrap_ci, mean_ci, relative_benefit
from repro.errors import ConfigurationError


class TestMeanCI:
    def test_single_sample_degenerate(self):
        assert mean_ci([5.0]) == (5.0, 5.0, 5.0)

    def test_constant_samples(self):
        assert mean_ci([2.0, 2.0, 2.0]) == (2.0, 2.0, 2.0)

    def test_interval_contains_mean(self):
        mean, lo, hi = mean_ci([1.0, 2.0, 3.0, 4.0])
        assert lo <= mean <= hi
        assert mean == pytest.approx(2.5)

    def test_wider_at_higher_confidence(self):
        data = [1.0, 2.0, 3.0, 4.0, 5.0]
        _, lo95, hi95 = mean_ci(data, 0.95)
        _, lo99, hi99 = mean_ci(data, 0.99)
        assert hi99 - lo99 > hi95 - lo95

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            mean_ci([])
        with pytest.raises(ConfigurationError):
            mean_ci([1.0], confidence=1.5)


class TestBootstrapCI:
    def test_single_sample(self):
        assert bootstrap_ci([3.0]) == (3.0, 3.0, 3.0)

    def test_contains_mean(self):
        mean, lo, hi = bootstrap_ci([1.0, 2.0, 3.0, 4.0, 5.0], seed=1)
        assert lo <= mean <= hi

    def test_reproducible(self):
        a = bootstrap_ci([1.0, 5.0, 3.0], seed=2)
        b = bootstrap_ci([1.0, 5.0, 3.0], seed=2)
        assert a == b

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            bootstrap_ci([])


class TestRelativeBenefit:
    def test_improvement(self):
        assert relative_benefit(130.0, 100.0) == pytest.approx(0.3)

    def test_regression(self):
        assert relative_benefit(90.0, 100.0) == pytest.approx(-0.1)

    def test_zero_baseline(self):
        assert relative_benefit(0.0, 0.0) == 0.0
        assert math.isinf(relative_benefit(5.0, 0.0))

    @given(st.floats(1.0, 1e6), st.floats(1.0, 1e6))
    def test_sign_matches_comparison(self, a, b):
        r = relative_benefit(a, b)
        if a > b:
            assert r > 0
        elif a < b:
            assert r < 0
        else:
            assert r == 0
