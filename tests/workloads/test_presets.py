"""Unit tests for the paper presets and scale control."""

import pytest

from repro.workloads import presets


class TestScale:
    def test_quick_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL_SCALE", raising=False)
        assert not presets.full_scale()
        assert presets.n_jobs() == presets.N_JOBS_QUICK

    def test_full_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL_SCALE", "1")
        assert presets.full_scale()
        assert presets.n_jobs() == presets.N_JOBS_PAPER

    def test_false_values(self, monkeypatch):
        for value in ("0", "false", "False", ""):
            monkeypatch.setenv("REPRO_FULL_SCALE", value)
            assert not presets.full_scale()

    def test_override_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL_SCALE", "1")
        assert presets.n_jobs(123) == 123


class TestGrids:
    def test_fig5a_range(self):
        assert presets.FIG5A_INTERVALS[0] == 10.0
        assert presets.FIG5A_INTERVALS[-1] == 85.0

    def test_fig5b_range(self):
        assert presets.FIG5B_LAXITIES[0] == pytest.approx(0.05)
        assert presets.FIG5B_LAXITIES[-1] == pytest.approx(0.95)
        assert all(0 < l < 1 for l in presets.FIG5B_LAXITIES)

    def test_fig5c_range(self):
        assert presets.FIG5C_PROCESSORS[0] == 16
        assert presets.FIG5C_PROCESSORS[-1] == 64

    def test_fig5d_alphas_integral_width(self):
        for alpha in presets.FIG5D_ALPHAS:
            width = presets.X * alpha
            assert abs(width - round(width)) < 1e-9
        assert 0.625 in presets.FIG5D_ALPHAS  # the paper's pivot

    def test_default_params(self):
        p = presets.default_params()
        assert p.x == presets.X
        assert p.t == presets.T
        assert p.alpha == presets.DEFAULT_ALPHA
        assert presets.default_params(laxity=0.9).laxity == 0.9

    def test_paper_constants(self):
        assert presets.X == 16
        assert presets.T == 25.0
        assert presets.N_JOBS_PAPER == 10_000
