"""Unit tests for the sweep harness."""

import pytest

from repro.errors import WorkloadError
from repro.workloads import presets
from repro.workloads.sweep import SYSTEMS, SweepConfig, run_point, run_sweep


@pytest.fixture
def tiny_config():
    return SweepConfig(n_jobs=60, seed=11)


class TestConfig:
    def test_axis_interval(self, tiny_config):
        assert tiny_config.with_axis("interval", 42.0).interval == 42.0

    def test_axis_laxity(self, tiny_config):
        assert tiny_config.with_axis("laxity", 0.8).params.laxity == 0.8

    def test_axis_processors(self, tiny_config):
        assert tiny_config.with_axis("processors", 64).processors == 64

    def test_axis_alpha(self, tiny_config):
        assert tiny_config.with_axis("alpha", 0.25).params.alpha == 0.25

    def test_unknown_axis(self, tiny_config):
        with pytest.raises(WorkloadError):
            tiny_config.with_axis("nope", 1.0)


class TestRunPoint:
    def test_each_system(self, tiny_config):
        for system in SYSTEMS:
            m = run_point(tiny_config, system)
            assert m.offered == 60
            assert 0 <= m.utilization <= 1.0 + 1e-9

    def test_unknown_system(self, tiny_config):
        with pytest.raises(WorkloadError):
            run_point(tiny_config, "shape9")

    def test_deterministic(self, tiny_config):
        a = run_point(tiny_config, "tunable")
        b = run_point(tiny_config, "tunable")
        assert a.throughput == b.throughput
        assert a.utilization == b.utilization

    def test_seed_changes_arrivals(self, tiny_config):
        from dataclasses import replace

        a = run_point(tiny_config, "tunable")
        b = run_point(replace(tiny_config, seed=99), "tunable")
        assert a.horizon != b.horizon

    def test_malleable_flag(self, tiny_config):
        from dataclasses import replace

        m = run_point(replace(tiny_config, malleable=True), "shape1")
        assert m.offered == 60


class TestRunSweep:
    def test_structure(self, tiny_config):
        sweep = run_sweep("interval", [20.0, 40.0], tiny_config)
        assert sweep.values == (20.0, 40.0)
        assert set(sweep.systems) == set(SYSTEMS)
        assert set(sweep.rows.keys()) == {20.0, 40.0}

    def test_series_and_benefit(self, tiny_config):
        sweep = run_sweep("interval", [20.0, 40.0], tiny_config)
        tun = sweep.series("tunable", "throughput")
        b1 = sweep.benefit("throughput", "shape1")
        s1 = sweep.series("shape1", "throughput")
        assert [t - s for t, s in zip(tun, s1)] == b1

    def test_to_rows(self, tiny_config):
        sweep = run_sweep("laxity", [0.2, 0.8], tiny_config, systems=("tunable",))
        rows = sweep.to_rows()
        assert len(rows) == 2
        assert rows[0]["axis"] == "laxity"
        assert "throughput" in rows[0]

    def test_common_random_numbers(self, tiny_config):
        """All systems at one point see identical arrival sequences."""
        sweep = run_sweep("interval", [30.0], tiny_config)
        horizons = {
            system: sweep.rows[30.0][system].offered for system in SYSTEMS
        }
        assert len(set(horizons.values())) == 1
