"""Unit tests for the Figure-4 synthetic task system."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.workloads.synthetic import SyntheticParams


class TestValidation:
    def test_paper_defaults(self):
        p = SyntheticParams()
        assert p.x == 16
        assert p.t == 25.0

    def test_alpha_must_give_integer_width(self):
        with pytest.raises(WorkloadError):
            SyntheticParams(x=16, alpha=0.3)

    def test_alpha_bounds(self):
        with pytest.raises(WorkloadError):
            SyntheticParams(alpha=0.0)
        with pytest.raises(WorkloadError):
            SyntheticParams(alpha=1.5)

    def test_laxity_bounds(self):
        with pytest.raises(WorkloadError):
            SyntheticParams(laxity=1.0)
        with pytest.raises(WorkloadError):
            SyntheticParams(laxity=-0.1)

    def test_positive_x_t(self):
        with pytest.raises(WorkloadError):
            SyntheticParams(x=0)
        with pytest.raises(WorkloadError):
            SyntheticParams(t=0.0)

    def test_concurrency_factor(self):
        with pytest.raises(WorkloadError):
            SyntheticParams(concurrency_factor=0.5)


class TestDerived:
    def test_flat_shape(self):
        p = SyntheticParams(x=16, t=25.0, alpha=0.25)
        assert p.flat_width == 4
        assert p.flat_duration == 100.0

    def test_equal_task_areas(self):
        p = SyntheticParams(x=16, t=25.0, alpha=0.25)
        assert p.flat_width * p.flat_duration == pytest.approx(p.task_area)
        assert p.job_area == pytest.approx(2 * p.task_area)

    def test_deadline_formulas(self):
        # d1 = max(t, t/alpha)/(1-laxity); d2 = (t + t/alpha)/(1-laxity)
        p = SyntheticParams(x=4, t=10.0, alpha=0.5, laxity=0.5)
        assert p.d1 == pytest.approx(40.0)
        assert p.d2 == pytest.approx(60.0)

    def test_zero_laxity(self):
        p = SyntheticParams(x=4, t=10.0, alpha=0.5, laxity=0.0)
        assert p.d1 == pytest.approx(20.0)
        assert p.d2 == pytest.approx(30.0)

    def test_alpha_one_degenerate(self):
        p = SyntheticParams(x=4, t=10.0, alpha=1.0, laxity=0.0)
        assert p.flat_width == 4
        assert p.flat_duration == 10.0
        assert p.d1 == pytest.approx(10.0)

    def test_offered_load(self):
        p = SyntheticParams(x=16, t=25.0, alpha=0.5)
        assert p.offered_load(16, 50.0) == pytest.approx(1.0)
        with pytest.raises(WorkloadError):
            p.offered_load(0, 50.0)


class TestJobs:
    def test_shape1_leads_tall(self):
        p = SyntheticParams(x=4, t=10.0, alpha=0.5)
        c = p.shape1_chain()
        assert c[0].processors == 4
        assert c[1].processors == 2
        assert c.label == "shape1"

    def test_shape2_transposed(self):
        p = SyntheticParams(x=4, t=10.0, alpha=0.5)
        c = p.shape2_chain()
        assert c[0].processors == 2
        assert c[1].processors == 4

    def test_deadlines_attached(self):
        p = SyntheticParams(x=4, t=10.0, alpha=0.5, laxity=0.5)
        for c in (p.shape1_chain(), p.shape2_chain()):
            assert c[0].deadline == pytest.approx(p.d1)
            assert c[1].deadline == pytest.approx(p.d2)

    def test_tunable_job(self):
        p = SyntheticParams(x=4, t=10.0, alpha=0.5)
        job = p.tunable_job(release=5.0)
        assert job.tunable
        assert job.release == 5.0
        assert {c.label for c in job} == {"shape1", "shape2"}

    def test_rigid_jobs(self):
        p = SyntheticParams(x=4, t=10.0, alpha=0.5)
        assert p.rigid_job(1).chains[0].label == "shape1"
        assert p.rigid_job(2).chains[0].label == "shape2"
        with pytest.raises(WorkloadError):
            p.rigid_job(3)

    def test_or_graph_matches_chains(self):
        p = SyntheticParams(x=4, t=10.0, alpha=0.5)
        chains = p.or_graph().enumerate_chains()
        assert len(chains) == 2
        assert {c.params["shape"] for c in chains} == {1, 2}

    def test_concurrency_factor_widens(self):
        p = SyntheticParams(x=4, t=10.0, alpha=0.5, concurrency_factor=2.0)
        assert p.shape1_chain()[0].max_concurrency == 8

    def test_with_helpers(self):
        p = SyntheticParams(x=4, t=10.0, alpha=0.5)
        assert p.with_laxity(0.9).laxity == 0.9
        assert p.with_alpha(0.25).alpha == 0.25

    @given(st.sampled_from([1, 2, 4, 8, 16]), st.floats(0.0, 0.9))
    def test_chain_areas_always_equal(self, k, laxity):
        p = SyntheticParams(x=16, t=25.0, alpha=k / 16, laxity=round(laxity, 2))
        assert p.shape1_chain().total_area == pytest.approx(
            p.shape2_chain().total_area
        )
