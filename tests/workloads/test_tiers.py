"""Unit tests for the quality-tiered workload."""

import pytest

from repro.errors import WorkloadError
from repro.model.quality import chain_quality
from repro.workloads.synthetic import SyntheticParams
from repro.workloads.tiers import DEFAULT_TIERS, QualityTier, TieredParams


@pytest.fixture
def tiered():
    return TieredParams(base=SyntheticParams(x=16, t=25.0, alpha=0.5, laxity=0.5))


class TestQualityTier:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            QualityTier("x", 0.0, 0.5)
        with pytest.raises(WorkloadError):
            QualityTier("x", 1.5, 0.5)
        with pytest.raises(WorkloadError):
            QualityTier("x", 0.5, 0.0)
        with pytest.raises(WorkloadError):
            QualityTier("x", 0.5, 1.5)


class TestTieredParams:
    def test_default_three_tiers(self, tiered):
        assert len(tiered.tiers) == 3
        assert tiered.best_quality == 1.0

    def test_duplicate_labels_rejected(self):
        with pytest.raises(WorkloadError):
            TieredParams(
                tiers=(QualityTier("a", 1.0, 1.0), QualityTier("a", 0.5, 0.5))
            )

    def test_no_tiers_rejected(self):
        with pytest.raises(WorkloadError):
            TieredParams(tiers=())

    def test_scale_below_one_processor_rejected(self):
        base = SyntheticParams(x=4, t=10.0, alpha=0.5)
        with pytest.raises(WorkloadError):
            TieredParams(base=base, tiers=(QualityTier("tiny", 0.1, 0.5),))

    def test_job_path_count(self, tiered):
        job = tiered.tiered_job()
        assert len(job.chains) == 2 * len(tiered.tiers)

    def test_area_scales_with_tier(self, tiered):
        job = tiered.tiered_job()
        areas = [c.total_area for c in job.chains]
        # Premium pair largest, economy pair smallest.
        assert areas[0] == areas[1] > areas[2] == areas[3] > areas[4] == areas[5]

    def test_quality_attached(self, tiered):
        job = tiered.tiered_job()
        qualities = [chain_quality(c) for c in job.chains]
        assert qualities == [1.0, 1.0, 0.85, 0.85, 0.65, 0.65]

    def test_transposition_within_tier(self, tiered):
        shape1, shape2 = tiered.tier_chains(tiered.tiers[0])
        assert shape1[0].processors == shape2[1].processors
        assert shape1[1].processors == shape2[0].processors

    def test_tier_of_chain_index(self, tiered):
        assert tiered.tier_of_chain_index(0).label == "premium"
        assert tiered.tier_of_chain_index(1).label == "premium"
        assert tiered.tier_of_chain_index(4).label == "economy"
        with pytest.raises(WorkloadError):
            tiered.tier_of_chain_index(6)

    def test_deadlines_match_base(self, tiered):
        job = tiered.tiered_job()
        for chain in job.chains:
            assert chain[0].deadline == pytest.approx(tiered.base.d1)
            assert chain[1].deadline == pytest.approx(tiered.base.d2)
