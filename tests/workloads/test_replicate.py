"""Unit tests for multi-seed replication."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.replicate import replicate_point
from repro.workloads.sweep import SweepConfig


@pytest.fixture(scope="module")
def point():
    return replicate_point(SweepConfig(n_jobs=300), seeds=(1, 2, 3, 4))


class TestReplicatePoint:
    def test_structure(self, point):
        assert point.seeds == (1, 2, 3, 4)
        for metric in ("throughput", "utilization"):
            for system in ("tunable", "shape1", "shape2"):
                rm = point.metrics[metric][system]
                assert len(rm.samples) == 4
                assert rm.ci_low <= rm.mean <= rm.ci_high

    def test_benefit_ci_is_paired(self, point):
        ci = point.benefit_ci("throughput", "shape1")
        tun = point.metrics["throughput"]["tunable"].samples
        s1 = point.metrics["throughput"]["shape1"].samples
        assert ci.samples == tuple(a - b for a, b in zip(tun, s1))

    def test_headline_benefit_significant(self, point):
        """At the default operating point the benefit over both shapes is
        statistically solid even with four seeds x 300 jobs."""
        assert point.benefit_significant("throughput", "shape1")
        assert point.benefit_significant("throughput", "shape2")

    def test_validation(self):
        with pytest.raises(WorkloadError):
            replicate_point(SweepConfig(n_jobs=10), seeds=())
        with pytest.raises(WorkloadError):
            replicate_point(SweepConfig(n_jobs=10), seeds=(1, 1))

    def test_single_seed_degenerate_ci(self):
        point = replicate_point(SweepConfig(n_jobs=100), seeds=(9,))
        rm = point.metrics["throughput"]["tunable"]
        assert rm.ci_low == rm.mean == rm.ci_high
        assert rm.half_width == 0.0
