"""Unit tests for control-parameter declarations."""

import pytest

from repro.errors import ControlParameterError
from repro.lang.params import ParameterSet


class TestDeclare:
    def test_kwargs_construction(self):
        ps = ParameterSet(a=None, b=4)
        assert "a" in ps and "b" in ps
        assert ps.names == ("a", "b")
        assert len(ps) == 2

    def test_redeclaration_rejected(self):
        ps = ParameterSet(a=None)
        with pytest.raises(ControlParameterError):
            ps.declare("a")

    def test_invalid_identifier(self):
        with pytest.raises(ControlParameterError):
            ParameterSet().declare("not-valid")
        with pytest.raises(ControlParameterError):
            ParameterSet().declare("")

    def test_iteration(self):
        assert list(ParameterSet(x=None, y=None)) == ["x", "y"]


class TestEnvironment:
    def test_initial_env_skips_uninitialized(self):
        ps = ParameterSet(a=None, b=7)
        assert ps.initial_env() == {"b": 7}

    def test_require(self):
        ps = ParameterSet(a=None)
        ps.require("a")
        with pytest.raises(ControlParameterError):
            ps.require("z")

    def test_validate_assignment(self):
        ps = ParameterSet(a=None)
        ps.validate_assignment({"a": 1})
        with pytest.raises(ControlParameterError):
            ps.validate_assignment({"a": 1, "zz": 2})
