"""Unit tests for the preprocessor (path enumeration, agent building)."""

import pytest

from repro.core.resources import ProcessorTimeRequest
from repro.errors import InvalidJobError, ProgramStructureError
from repro.lang.constructs import (
    LoopConstruct,
    SelectBranch,
    SelectConstruct,
    TaskConfig,
    TaskConstruct,
)
from repro.lang.expr import P
from repro.lang.params import ParameterSet
from repro.lang.preprocess import (
    build_agent,
    build_job,
    enumerate_paths,
    enumerate_paths_detailed,
)
from repro.lang.program import TunableProgram


def cfg(values=(), procs=1, dur=1.0, quality=1.0):
    return TaskConfig(tuple(values), ProcessorTimeRequest(procs, dur), quality)


def simple_task(name, deadline=10.0, **kw):
    return TaskConstruct(name, deadline, (), (cfg(),), **kw)


class TestTaskEnumeration:
    def test_single_path(self):
        prog = TunableProgram("p", ParameterSet(), (simple_task("a"),))
        chains = enumerate_paths(prog)
        assert len(chains) == 1
        assert chains[0][0].name == "a"

    def test_config_fanout(self):
        t = TaskConstruct("a", 10.0, ("g",), (cfg((1,)), cfg((2,))))
        prog = TunableProgram("p", ParameterSet(g=None), (t,))
        chains = enumerate_paths(prog)
        assert len(chains) == 2
        assert {c.params["g"] for c in chains} == {1, 2}

    def test_unification_filters_configs(self):
        t1 = TaskConstruct("a", 10.0, ("g",), (cfg((1,)), cfg((2,))))
        t2 = TaskConstruct("b", 20.0, ("g",), (cfg((1,)), cfg((2,))))
        prog = TunableProgram("p", ParameterSet(g=None), (t1, t2))
        chains = enumerate_paths(prog)
        # g must be consistent across both tasks: 2 paths, not 4.
        assert len(chains) == 2

    def test_default_initializes_env(self):
        t = TaskConstruct("a", 10.0, ("g",), (cfg((1,)), cfg((2,))))
        prog = TunableProgram("p", ParameterSet(g=2), (t,))
        chains = enumerate_paths(prog)
        assert len(chains) == 1
        assert chains[0].params["g"] == 2

    def test_expr_deadline(self):
        t = TaskConstruct("a", P("g") * 2.0, ("g",), (cfg((5,)),))
        prog = TunableProgram("p", ParameterSet(g=None), (t,))
        [chain] = enumerate_paths(prog)
        assert chain[0].deadline == 10.0

    def test_bad_deadline_value(self):
        t = TaskConstruct("a", P("g") - 5.0, ("g",), (cfg((5,)),))
        prog = TunableProgram("p", ParameterSet(g=None), (t,))
        with pytest.raises(ProgramStructureError):
            enumerate_paths(prog)


class TestSelectEnumeration:
    def make(self, when1, when2):
        sel = SelectConstruct(
            (
                SelectBranch(when=when1, body=(simple_task("fine"),),
                             finally_binds={"c": 1}),
                SelectBranch(when=when2, body=(simple_task("coarse"),),
                             finally_binds={"c": 2}),
            )
        )
        last = TaskConstruct("z", 30.0, ("c",), (cfg((1,)), cfg((2,))))
        return TunableProgram("p", ParameterSet(g=None, c=None),
                              (TaskConstruct("a", 5.0, ("g",), (cfg((1,)), cfg((2,)))),
                               sel, last))

    def test_guarded_paths(self):
        prog = self.make(P("g") == 1, P("g") == 2)
        chains = enumerate_paths(prog)
        assert len(chains) == 2
        for c in chains:
            names = [t.name for t in c]
            if c.params["g"] == 1:
                assert names == ["a", "fine", "z"]
                assert c.params["c"] == 1
            else:
                assert names == ["a", "coarse", "z"]
                assert c.params["c"] == 2

    def test_finally_restricts_downstream(self):
        prog = self.make(P("g") == 1, P("g") == 2)
        for c in enumerate_paths(prog):
            # z's config must match the c the branch assigned.
            assert c.params["c"] in (1, 2)

    def test_dead_select_kills_path(self):
        prog = self.make(P("g") == 1, P("g") == 1)
        chains = enumerate_paths(prog)
        # g=2 paths die at the select (no branch ready).
        assert all(c.params["g"] == 1 for c in chains)

    def test_all_dead_raises(self):
        prog = self.make(False, False)
        with pytest.raises(InvalidJobError):
            enumerate_paths(prog)

    def test_boolean_when(self):
        sel = SelectConstruct(
            (SelectBranch(when=True, body=(simple_task("x"),)),
             SelectBranch(when=False, body=(simple_task("y"),)))
        )
        prog = TunableProgram("p", ParameterSet(), (sel,))
        chains = enumerate_paths(prog)
        assert len(chains) == 1
        assert chains[0][0].name == "x"


class TestLoopEnumeration:
    def test_fixed_count(self):
        loop = LoopConstruct(count=3, body=(simple_task("s"),))
        prog = TunableProgram("p", ParameterSet(), (loop,))
        [chain] = enumerate_paths(prog)
        assert len(chain) == 3

    def test_param_count(self):
        loop = LoopConstruct(count=P("n"), body=(simple_task("s"),))
        prog = TunableProgram("p", ParameterSet(n=2), (loop,))
        [chain] = enumerate_paths(prog)
        assert len(chain) == 2

    def test_loop_var_in_deadline(self):
        loop = LoopConstruct(
            count=3, var="k",
            body=(TaskConstruct("s", P("k") * 10.0 + 10.0, (), (cfg(),)),),
        )
        prog = TunableProgram("p", ParameterSet(), (loop,))
        [chain] = enumerate_paths(prog)
        assert [t.deadline for t in chain] == [10.0, 20.0, 30.0]

    def test_loop_var_unbound_after(self):
        loop = LoopConstruct(count=2, var="k", body=(simple_task("s"),))
        prog = TunableProgram("p", ParameterSet(), (loop, simple_task("z")))
        [chain] = enumerate_paths(prog)
        assert "k" not in (chain.params or {})

    def test_zero_count_loop_with_other_tasks(self):
        loop = LoopConstruct(count=P("n"), body=(simple_task("s"),))
        prog = TunableProgram("p", ParameterSet(n=0), (loop, simple_task("z")))
        [chain] = enumerate_paths(prog)
        assert [t.name for t in chain] == ["z"]

    def test_loop_with_tunable_body_fans_out(self):
        inner = TaskConstruct("s", 10.0, ("m",), (cfg((1,)), cfg((2,))))
        loop = LoopConstruct(count=2, body=(inner,))
        prog = TunableProgram("p", ParameterSet(m=None), (loop,))
        chains = enumerate_paths(prog)
        # m unifies across iterations: 2 paths, not 4.
        assert len(chains) == 2

    def test_bad_count_value(self):
        loop = LoopConstruct(count=P("n"), body=(simple_task("s"),))
        prog = TunableProgram("p", ParameterSet(n=2.5), (loop,))
        with pytest.raises(ProgramStructureError):
            enumerate_paths(prog)

    def test_max_paths_guard(self):
        inner = TaskConstruct(
            "s", 10.0, (), tuple(cfg(()) for _ in range(4))
        )
        prog = TunableProgram("p", ParameterSet(), (inner, ))
        with pytest.raises(ProgramStructureError):
            enumerate_paths(prog, max_paths=2)


class TestBuilders:
    def make_prog(self):
        t = TaskConstruct("a", 10.0, ("g",), (cfg((1,)), cfg((2,), quality=0.5)))
        return TunableProgram("app", ParameterSet(g=None), (t,))

    def test_build_job(self):
        job = build_job(self.make_prog(), release=4.0)
        assert job.tunable
        assert job.release == 4.0
        assert job.name == "app"

    def test_build_agent(self):
        agent = build_agent(self.make_prog())
        assert agent.tunable
        assert sorted(agent.path_qualities()) == [0.5, 1.0]

    def test_detailed_paths_align(self):
        paths = enumerate_paths_detailed(self.make_prog())
        for p in paths:
            assert len(p.constructs) == len(p.chain)
            assert p.constructs[0].name == p.chain[0].name
            assert p.params == p.chain.params
