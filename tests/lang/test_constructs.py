"""Unit tests for the DSL constructs."""

import pytest

from repro.core.resources import ProcessorTimeRequest
from repro.errors import ProgramStructureError
from repro.lang.constructs import (
    LoopConstruct,
    SelectBranch,
    SelectConstruct,
    TaskConfig,
    TaskConstruct,
)
from repro.lang.expr import P


def cfg(values, procs=2, dur=1.0, quality=1.0):
    return TaskConfig(tuple(values), ProcessorTimeRequest(procs, dur), quality)


class TestTaskConstruct:
    def test_basic(self):
        t = TaskConstruct(
            "work", deadline=5.0, parameter_list=("g",), configs=(cfg((16,)),)
        )
        assert t.name == "work"
        assert t.configs[0].values == (16,)

    def test_no_configs(self):
        with pytest.raises(ProgramStructureError):
            TaskConstruct("t", 5.0, (), ())

    def test_no_name(self):
        with pytest.raises(ProgramStructureError):
            TaskConstruct("", 5.0, (), (cfg(()),))

    def test_arity_mismatch(self):
        with pytest.raises(ProgramStructureError):
            TaskConstruct("t", 5.0, ("a", "b"), (cfg((1,)),))

    def test_spec_for(self):
        t = TaskConstruct(
            "work", deadline=5.0, parameter_list=("g",),
            configs=(cfg((16,), procs=4, dur=2.0, quality=0.9),),
        )
        spec = t.spec_for(t.configs[0], 5.0)
        assert spec.name == "work"
        assert spec.processors == 4
        assert spec.quality == 0.9
        assert spec.deadline == 5.0

    def test_spec_for_max_concurrency(self):
        t = TaskConstruct(
            "work", deadline=5.0, parameter_list=(),
            configs=(cfg((), procs=4),), max_concurrency=8,
        )
        assert t.spec_for(t.configs[0], 5.0).max_concurrency == 8


class TestSelectConstruct:
    def test_empty_branches(self):
        with pytest.raises(ProgramStructureError):
            SelectConstruct(())

    def test_branch_holds_body_and_finally(self):
        inner = TaskConstruct("t", 5.0, (), (cfg(()),))
        br = SelectBranch(when=P("x") == 1, body=(inner,), finally_binds={"c": 2})
        sel = SelectConstruct((br,), name="s")
        assert sel.branches[0].finally_binds == {"c": 2}


class TestLoopConstruct:
    def test_empty_body(self):
        with pytest.raises(ProgramStructureError):
            LoopConstruct(count=2, body=())

    def test_negative_count(self):
        inner = TaskConstruct("t", 5.0, (), (cfg(()),))
        with pytest.raises(ProgramStructureError):
            LoopConstruct(count=-1, body=(inner,))

    def test_expr_count_allowed(self):
        inner = TaskConstruct("t", 5.0, (), (cfg(()),))
        LoopConstruct(count=P("n"), body=(inner,))
