"""Unit tests for program validation."""

import pytest

from repro.core.resources import ProcessorTimeRequest
from repro.errors import ControlParameterError, ProgramStructureError
from repro.lang.constructs import (
    LoopConstruct,
    SelectBranch,
    SelectConstruct,
    TaskConfig,
    TaskConstruct,
)
from repro.lang.expr import P
from repro.lang.params import ParameterSet
from repro.lang.program import TunableProgram


def cfg(values=(), procs=1, dur=1.0):
    return TaskConfig(tuple(values), ProcessorTimeRequest(procs, dur))


def task(name, deadline=5.0, params=(), configs=None):
    return TaskConstruct(name, deadline, tuple(params), configs or (cfg(),))


class TestValidation:
    def test_valid_program(self):
        prog = TunableProgram("p", ParameterSet(g=None),
                              (task("a", params=("g",), configs=(cfg((1,)),)),))
        assert prog.name == "p"

    def test_empty_body(self):
        with pytest.raises(ProgramStructureError):
            TunableProgram("p", ParameterSet(), ())

    def test_undeclared_parameter_in_task(self):
        with pytest.raises(ControlParameterError):
            TunableProgram(
                "p", ParameterSet(),
                (task("a", params=("ghost",), configs=(cfg((1,)),)),),
            )

    def test_duplicate_task_names(self):
        with pytest.raises(ProgramStructureError):
            TunableProgram("p", ParameterSet(), (task("a"), task("a")))

    def test_duplicate_across_select_branches(self):
        sel = SelectConstruct(
            (
                SelectBranch(when=True, body=(task("x"),)),
                SelectBranch(when=True, body=(task("x"),)),
            )
        )
        with pytest.raises(ProgramStructureError):
            TunableProgram("p", ParameterSet(), (sel,))

    def test_when_expr_scope(self):
        sel = SelectConstruct(
            (SelectBranch(when=P("ghost") == 1, body=(task("x"),)),)
        )
        with pytest.raises(ControlParameterError):
            TunableProgram("p", ParameterSet(), (sel,))

    def test_finally_scope(self):
        sel = SelectConstruct(
            (SelectBranch(when=True, body=(task("x"),), finally_binds={"ghost": 1}),)
        )
        with pytest.raises(ControlParameterError):
            TunableProgram("p", ParameterSet(), (sel,))

    def test_loop_var_extends_scope(self):
        loop = LoopConstruct(
            count=2, var="k",
            body=(task("x", deadline=P("k") * 5.0 + 5.0),),
        )
        TunableProgram("p", ParameterSet(), (loop,))

    def test_loop_var_shadowing_rejected(self):
        loop = LoopConstruct(count=2, var="g", body=(task("x"),))
        with pytest.raises(ControlParameterError):
            TunableProgram("p", ParameterSet(g=None), (loop,))

    def test_loop_var_not_visible_outside(self):
        loop = LoopConstruct(count=2, var="k", body=(task("x"),))
        after = task("y", deadline=P("k") * 2.0)
        with pytest.raises(ControlParameterError):
            TunableProgram("p", ParameterSet(), (loop, after))

    def test_nonpositive_constant_deadline(self):
        with pytest.raises(ProgramStructureError):
            TunableProgram("p", ParameterSet(), (task("a", deadline=0.0),))

    def test_loop_count_scope(self):
        loop = LoopConstruct(count=P("n"), body=(task("x"),))
        with pytest.raises(ControlParameterError):
            TunableProgram("p", ParameterSet(), (loop,))
        TunableProgram("p", ParameterSet(n=3), (loop,))


class TestLookup:
    def test_tasks_iterates_nested(self):
        sel = SelectConstruct((SelectBranch(when=True, body=(task("b"),)),))
        loop = LoopConstruct(count=1, body=(task("c"),))
        prog = TunableProgram("p", ParameterSet(), (task("a"), sel, loop))
        assert [t.name for t in prog.tasks()] == ["a", "b", "c"]

    def test_task_by_name(self):
        prog = TunableProgram("p", ParameterSet(), (task("a"),))
        assert prog.task_by_name("a").name == "a"
        with pytest.raises(ProgramStructureError):
            prog.task_by_name("zz")
