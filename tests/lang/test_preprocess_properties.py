"""Property-based fuzzing of the preprocessor over random programs."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.resources import ProcessorTimeRequest
from repro.errors import InvalidJobError, ProgramStructureError
from repro.lang.constructs import (
    LoopConstruct,
    SelectBranch,
    SelectConstruct,
    TaskConfig,
    TaskConstruct,
)
from repro.lang.expr import P
from repro.lang.params import ParameterSet
from repro.lang.preprocess import enumerate_paths, enumerate_paths_detailed
from repro.lang.program import TunableProgram

# Small pool of parameter names/values the generator draws from.
PARAMS = ("p0", "p1", "p2")
VALUES = (1, 2)


@st.composite
def programs(draw):
    """Random small tunable programs over a fixed parameter pool."""
    counter = [0]

    def fresh_name() -> str:
        counter[0] += 1
        return f"t{counter[0]}"

    def gen_task() -> TaskConstruct:
        n_params = draw(st.integers(0, 2))
        plist = tuple(draw(st.permutations(PARAMS))[:n_params])
        n_cfgs = draw(st.integers(1, 2))
        configs = []
        seen_values = set()
        for _ in range(n_cfgs):
            values = tuple(draw(st.sampled_from(VALUES)) for _ in plist)
            if values in seen_values:
                continue
            seen_values.add(values)
            configs.append(
                TaskConfig(
                    values,
                    ProcessorTimeRequest(draw(st.integers(1, 4)), 1.0),
                    quality=draw(st.sampled_from([0.5, 1.0])),
                )
            )
        return TaskConstruct(
            fresh_name(),
            deadline=float(draw(st.integers(5, 50))),
            parameter_list=plist,
            configs=tuple(configs),
        )

    def gen_construct(depth: int):
        kind = draw(
            st.sampled_from(
                ["task", "task"] + (["select", "loop"] if depth > 0 else [])
            )
        )
        if kind == "task":
            return gen_task()
        if kind == "loop":
            return LoopConstruct(
                count=draw(st.integers(1, 2)),
                body=tuple(
                    gen_construct(depth - 1) for _ in range(draw(st.integers(1, 2)))
                ),
                name=fresh_name(),
            )
        branches = []
        for _ in range(draw(st.integers(1, 2))):
            guard_param = draw(st.sampled_from(PARAMS))
            when = draw(
                st.sampled_from(
                    [True, P(guard_param) == 1, P(guard_param) == 2]
                )
            )
            binds = {}
            if draw(st.booleans()):
                binds[draw(st.sampled_from(PARAMS))] = draw(st.sampled_from(VALUES))
            branches.append(
                SelectBranch(
                    when=when,
                    body=tuple(
                        gen_construct(depth - 1)
                        for _ in range(draw(st.integers(1, 2)))
                    ),
                    finally_binds=binds,
                )
            )
        return SelectConstruct(tuple(branches), name=fresh_name())

    body = tuple(gen_construct(1) for _ in range(draw(st.integers(1, 3))))
    # Defaults so guard expressions always evaluate (guards may read params
    # never bound by any task configuration).
    params = ParameterSet(
        **{name: draw(st.sampled_from(VALUES)) for name in PARAMS}
    )
    return TunableProgram(f"fuzz{counter[0]}", params, body)


@given(programs())
def test_enumeration_invariants(program):
    try:
        paths = enumerate_paths_detailed(program, max_paths=512)
    except InvalidJobError:
        return  # every path died at a select or contributed no tasks: legal
    except ProgramStructureError:
        return  # path explosion guard: legal
    assert paths
    for info in paths:
        chain = info.chain
        # Construct alignment holds.
        assert len(info.constructs) == len(chain)
        for construct, task in zip(info.constructs, chain.tasks):
            assert construct.name == task.name
        # Every bound parameter is declared (loop vars are unbound on exit).
        for name in chain.params or {}:
            assert name in program.parameters
        # Every materialized task corresponds to one of its construct's
        # declared configurations.  (Checking parameter-value consistency
        # against the *final* environment would be too strong: a later
        # `finally` may legitimately overwrite a parameter after this
        # task's configuration unified — the Fig. 3 junction program's own
        # pattern.)
        for construct, task in zip(info.constructs, chain.tasks):
            assert any(
                cfg.request == task.request and cfg.quality == task.quality
                for cfg in construct.configs
            ), f"task {task.name} does not match any declared configuration"

        # When no finally/overwrite exists anywhere, full value consistency
        # against the final environment must hold.
        def has_finally(constructs):
            for c in constructs:
                if isinstance(c, SelectConstruct):
                    if any(br.finally_binds for br in c.branches):
                        return True
                    if any(has_finally(br.body) for br in c.branches):
                        return True
                elif isinstance(c, LoopConstruct):
                    if has_finally(c.body):
                        return True
            return False

        if not has_finally(program.body):
            env = dict(chain.params or {})
            for construct, task in zip(info.constructs, chain.tasks):
                assert any(
                    cfg.request == task.request
                    and all(
                        env.get(p) == v
                        for p, v in zip(construct.parameter_list, cfg.values)
                    )
                    for cfg in construct.configs
                )


@given(programs())
def test_enumeration_deterministic(program):
    def snapshot():
        try:
            return [
                (c.label, tuple(t.name for t in c), tuple(sorted((c.params or {}).items())))
                for c in enumerate_paths(program, max_paths=512)
            ]
        except (InvalidJobError, ProgramStructureError) as exc:
            return type(exc).__name__

    assert snapshot() == snapshot()
