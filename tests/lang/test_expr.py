"""Unit tests for scheduling-time expressions."""

import pytest

from repro.errors import ControlParameterError, LanguageError
from repro.lang.expr import Const, Expr, P, Param, as_expr


class TestAtoms:
    def test_const(self):
        assert Const(5).evaluate({}) == 5
        assert Const(5).referenced_params() == frozenset()

    def test_param(self):
        assert Param("x").evaluate({"x": 3}) == 3
        assert Param("x").referenced_params() == {"x"}

    def test_unbound_param(self):
        with pytest.raises(ControlParameterError):
            Param("x").evaluate({})

    def test_invalid_param_name(self):
        with pytest.raises(ControlParameterError):
            Param("bad name")

    def test_p_alias(self):
        assert P is Param


class TestOperators:
    env = {"x": 10, "y": 3}

    def test_arithmetic(self):
        assert (P("x") + 5).evaluate(self.env) == 15
        assert (P("x") - P("y")).evaluate(self.env) == 7
        assert (P("x") * 2).evaluate(self.env) == 20
        assert (P("x") / 4).evaluate(self.env) == 2.5
        assert (P("x") // 3).evaluate(self.env) == 3
        assert (P("x") % 3).evaluate(self.env) == 1
        assert (-P("y")).evaluate(self.env) == -3

    def test_reflected(self):
        assert (5 + P("y")).evaluate(self.env) == 8
        assert (20 - P("x")).evaluate(self.env) == 10
        assert (2 * P("y")).evaluate(self.env) == 6
        assert (30 / P("y")).evaluate(self.env) == 10

    def test_comparisons(self):
        assert (P("x") == 10).evaluate(self.env) is True
        assert (P("x") != 10).evaluate(self.env) is False
        assert (P("y") < 4).evaluate(self.env) is True
        assert (P("y") <= 3).evaluate(self.env) is True
        assert (P("y") > 4).evaluate(self.env) is False
        assert (P("x") >= 10).evaluate(self.env) is True

    def test_boolean(self):
        e = (P("x") == 10) & (P("y") == 3)
        assert e.evaluate(self.env) is True
        e = (P("x") == 0) | (P("y") == 3)
        assert e.evaluate(self.env) is True
        assert (~(P("x") == 10)).evaluate(self.env) is False

    def test_referenced_params_propagate(self):
        e = (P("x") + P("y")) * 2 == 26
        assert e.referenced_params() == {"x", "y"}

    def test_no_truth_value_at_build_time(self):
        with pytest.raises(LanguageError):
            bool(P("x") == 1)

    def test_hashable(self):
        {P("x"): 1}  # __eq__ overload must not break dict keys

    def test_repr(self):
        assert repr(P("x") + 1) == "(x + 1)"


class TestAsExpr:
    def test_passthrough(self):
        e = P("x")
        assert as_expr(e) is e

    def test_literal_wrapped(self):
        assert isinstance(as_expr(42), Const)

    def test_callable_rejected(self):
        with pytest.raises(LanguageError):
            as_expr(lambda: 1)
