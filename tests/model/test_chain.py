"""Unit tests for TaskChain."""

import pytest

from repro.core.resources import ProcessorTimeRequest
from repro.errors import InvalidChainError
from repro.model.chain import TaskChain
from repro.model.task import TaskSpec


def task(name, procs, dur, deadline):
    return TaskSpec(name, ProcessorTimeRequest(procs, dur), deadline=deadline)


@pytest.fixture
def chain():
    return TaskChain(
        (
            task("a", 4, 10.0, 20.0),
            task("b", 2, 20.0, 60.0),
        ),
        label="demo",
    )


class TestValidation:
    def test_empty_chain(self):
        with pytest.raises(InvalidChainError):
            TaskChain(())

    def test_non_task_element(self):
        with pytest.raises(InvalidChainError):
            TaskChain(("nope",))  # type: ignore[arg-type]

    def test_params_copied(self):
        src = {"k": 1}
        c = TaskChain((task("a", 1, 1.0, 5.0),), params=src)
        src["k"] = 2
        assert c.params["k"] == 1


class TestDerived:
    def test_len_iter_getitem(self, chain):
        assert len(chain) == 2
        assert [t.name for t in chain] == ["a", "b"]
        assert chain[1].name == "b"

    def test_total_area(self, chain):
        assert chain.total_area == 4 * 10 + 2 * 20

    def test_total_duration(self, chain):
        assert chain.total_duration == 30.0

    def test_max_width(self, chain):
        assert chain.max_width == 4

    def test_final_deadline(self, chain):
        assert chain.final_deadline == 60.0

    def test_prefix_areas(self, chain):
        assert chain.prefix_areas() == (40.0, 80.0)

    def test_describe(self, chain):
        assert chain.describe().startswith("demo:")


class TestEffectiveDeadlines:
    def test_already_tight(self, chain):
        # d_a = min(20, 60 - 20) = 20
        assert chain.effective_deadlines() == (20.0, 60.0)

    def test_successor_tightens(self):
        c = TaskChain((task("a", 1, 5.0, 100.0), task("b", 1, 50.0, 60.0)))
        assert c.effective_deadlines() == (10.0, 60.0)

    def test_three_tasks_cascade(self):
        c = TaskChain(
            (
                task("a", 1, 1.0, 100.0),
                task("b", 1, 10.0, 100.0),
                task("c", 1, 10.0, 30.0),
            )
        )
        assert c.effective_deadlines() == (10.0, 20.0, 30.0)


class TestTrivialInfeasibility:
    def test_too_wide(self, chain):
        assert chain.is_trivially_infeasible(capacity=2)
        assert not chain.is_trivially_infeasible(capacity=4)

    def test_zero_gap_deadline_miss(self):
        c = TaskChain((task("a", 1, 10.0, 5.0),))
        assert c.is_trivially_infeasible(capacity=8)

    def test_cumulative_deadline_miss(self):
        c = TaskChain((task("a", 1, 10.0, 10.0), task("b", 1, 10.0, 15.0)))
        assert c.is_trivially_infeasible(capacity=8)

    def test_feasible(self, chain):
        assert not chain.is_trivially_infeasible(capacity=8)

    def test_of_constructor(self):
        c = TaskChain.of([task("a", 1, 1.0, 5.0)], label="x")
        assert c.label == "x"
        assert len(c) == 1
