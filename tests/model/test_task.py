"""Unit tests for TaskSpec."""

import math

import pytest

from repro.core.resources import ProcessorTimeRequest
from repro.errors import InvalidTaskError
from repro.model.task import TaskSpec


def spec(**kw):
    defaults = dict(
        name="t", request=ProcessorTimeRequest(4, 2.0), deadline=10.0
    )
    defaults.update(kw)
    return TaskSpec(**defaults)


class TestValidation:
    def test_basic(self):
        t = spec()
        assert t.processors == 4
        assert t.duration == 2.0
        assert t.area == 8.0
        assert t.max_concurrency == 4  # defaults to rigid width

    def test_empty_name(self):
        with pytest.raises(InvalidTaskError):
            spec(name="")

    def test_nonpositive_deadline(self):
        with pytest.raises(InvalidTaskError):
            spec(deadline=0.0)
        with pytest.raises(InvalidTaskError):
            spec(deadline=-5.0)

    def test_nan_deadline(self):
        with pytest.raises(InvalidTaskError):
            spec(deadline=math.nan)

    def test_infinite_deadline_allowed(self):
        assert spec(deadline=math.inf).deadline == math.inf

    def test_negative_quality(self):
        with pytest.raises(InvalidTaskError):
            spec(quality=-0.1)

    def test_concurrency_below_width(self):
        with pytest.raises(InvalidTaskError):
            spec(max_concurrency=2)

    def test_concurrency_above_width(self):
        assert spec(max_concurrency=16).max_concurrency == 16


class TestTransforms:
    def test_with_deadline(self):
        t = spec().with_deadline(42.0)
        assert t.deadline == 42.0
        assert t.name == "t"

    def test_with_quality(self):
        assert spec().with_quality(0.5).quality == 0.5

    def test_reshaped_conserves_area(self):
        t = spec(max_concurrency=8)
        for p in (1, 2, 8):
            r = t.reshaped(p)
            assert r.processors == p
            assert r.area == pytest.approx(t.area)
            assert r.max_concurrency == 8

    def test_reshaped_beyond_concurrency(self):
        with pytest.raises(InvalidTaskError):
            spec().reshaped(8)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            spec().name = "other"  # type: ignore[misc]

    def test_str(self):
        assert "t(" in str(spec())
