"""Unit tests for OR task graphs."""

import pytest

from repro.core.resources import ProcessorTimeRequest
from repro.errors import InvalidJobError, ProgramStructureError
from repro.model.orgraph import Alternative, ORGraph, Stage
from repro.model.task import TaskSpec


def task(name, procs=1, dur=1.0, deadline=10.0):
    return TaskSpec(name, ProcessorTimeRequest(procs, dur), deadline=deadline)


def alt(*tasks, guard=None, binds=None, label=""):
    return Alternative(
        tasks=tuple(tasks), guard=guard or {}, binds=binds or {}, label=label
    )


class TestConstruction:
    def test_empty_stage(self):
        with pytest.raises(ProgramStructureError):
            Stage(())

    def test_empty_graph(self):
        with pytest.raises(ProgramStructureError):
            ORGraph(())

    def test_stage_single(self):
        s = Stage.single(task("a"))
        assert len(s.alternatives) == 1
        assert s.name == "a"


class TestEnumeration:
    def test_linear_graph(self):
        g = ORGraph((Stage.single(task("a")), Stage.single(task("b"))))
        chains = g.enumerate_chains()
        assert len(chains) == 1
        assert [t.name for t in chains[0]] == ["a", "b"]

    def test_cartesian_product(self):
        g = ORGraph(
            (
                Stage((alt(task("a1"), label="a1"), alt(task("a2"), label="a2"))),
                Stage((alt(task("b1"), label="b1"), alt(task("b2"), label="b2"))),
            )
        )
        chains = g.enumerate_chains()
        assert len(chains) == 4
        labels = {c.label for c in chains}
        assert labels == {"a1/b1", "a1/b2", "a2/b1", "a2/b2"}

    def test_binds_prune_downstream(self):
        g = ORGraph(
            (
                Stage(
                    (
                        alt(task("fine"), binds={"mode": "fine"}, label="fine"),
                        alt(task("coarse"), binds={"mode": "coarse"}, label="coarse"),
                    )
                ),
                Stage(
                    (
                        alt(task("f2"), binds={"mode": "fine"}, label="f2"),
                        alt(task("c2"), binds={"mode": "coarse"}, label="c2"),
                    )
                ),
            )
        )
        chains = g.enumerate_chains()
        assert len(chains) == 2  # mismatched mode pairs pruned
        assert {c.label for c in chains} == {"fine/f2", "coarse/c2"}

    def test_guard_filters(self):
        g = ORGraph(
            (
                Stage((alt(task("a"), binds={"x": 1}),)),
                Stage(
                    (
                        alt(task("yes"), guard={"x": 1}, label="yes"),
                        alt(task("no"), guard={"x": 2}, label="no"),
                    )
                ),
            )
        )
        chains = g.enumerate_chains()
        assert len(chains) == 1
        assert chains[0].tasks[1].name == "yes"

    def test_guard_on_unbound_param_raises(self):
        g = ORGraph((Stage((alt(task("a"), guard={"never_bound": 1}),)),))
        with pytest.raises(ProgramStructureError, match="unbound"):
            g.enumerate_chains()

    def test_initial_env_binds_guards(self):
        g = ORGraph((Stage((alt(task("a"), guard={"x": 1}),)),))
        chains = g.enumerate_chains(initial_env={"x": 1})
        assert len(chains) == 1
        with pytest.raises(InvalidJobError):
            g.enumerate_chains(initial_env={"x": 2})

    def test_chain_params_capture_env(self):
        g = ORGraph((Stage((alt(task("a"), binds={"x": 7}),)),))
        [c] = g.enumerate_chains()
        assert c.params == {"x": 7}

    def test_all_paths_pruned_raises(self):
        g = ORGraph(
            (
                Stage((alt(task("a"), binds={"x": 1}),)),
                Stage((alt(task("b"), guard={"x": 2}),)),
            )
        )
        with pytest.raises(InvalidJobError):
            g.enumerate_chains()

    def test_empty_path_raises(self):
        g = ORGraph((Stage((alt(),)),))
        with pytest.raises(InvalidJobError):
            g.enumerate_chains()

    def test_max_paths_guard(self):
        stage = Stage(tuple(alt(task(f"t{i}"), label=str(i)) for i in range(4)))
        g = ORGraph((stage, stage, stage))
        with pytest.raises(ProgramStructureError, match="max_paths"):
            g.enumerate_chains(max_paths=10)

    def test_path_count_upper_bound(self):
        stage2 = Stage((alt(task("a")), alt(task("b"))))
        g = ORGraph((stage2, stage2, stage2))
        assert g.path_count_upper_bound() == 8

    def test_from_chains(self):
        from repro.model.chain import TaskChain

        chains = [
            TaskChain((task("a"),), label="A"),
            TaskChain((task("b"),), label="B"),
        ]
        g = ORGraph.from_chains(chains)
        out = g.enumerate_chains()
        assert {c.label for c in out} == {"A", "B"}
