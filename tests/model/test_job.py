"""Unit tests for Job."""

import math

import pytest

from repro.core.resources import ProcessorTimeRequest
from repro.errors import InvalidJobError
from repro.model.chain import TaskChain
from repro.model.job import Job
from repro.model.task import TaskSpec


def chain(label="c", quality=1.0):
    return TaskChain(
        (
            TaskSpec(
                "t", ProcessorTimeRequest(2, 5.0), deadline=20.0, quality=quality
            ),
        ),
        label=label,
    )


class TestConstruction:
    def test_rigid(self):
        job = Job.rigid(chain(), release=3.0, name="n")
        assert not job.tunable
        assert len(job) == 1
        assert job.release == 3.0
        assert job.name == "n"

    def test_tunable(self):
        job = Job.tunable_of([chain("a"), chain("b")])
        assert job.tunable
        assert [c.label for c in job] == ["a", "b"]

    def test_no_chains(self):
        with pytest.raises(InvalidJobError):
            Job(chains=())

    def test_bad_chain_type(self):
        with pytest.raises(InvalidJobError):
            Job(chains=("x",))  # type: ignore[arg-type]

    def test_nonfinite_release(self):
        with pytest.raises(InvalidJobError):
            Job.rigid(chain(), release=math.inf)

    def test_unique_ids(self):
        a = Job.rigid(chain())
        b = Job.rigid(chain())
        assert a.job_id != b.job_id


class TestMethods:
    def test_absolute_deadline(self):
        job = Job.rigid(chain(), release=10.0)
        assert job.absolute_deadline(job.chains[0]) == 30.0

    def test_best_quality(self):
        job = Job.tunable_of([chain("a", 0.5), chain("b", 0.9)])
        assert job.best_quality() == pytest.approx(0.9)

    def test_released_at_keeps_id(self):
        job = Job.rigid(chain())
        moved = job.released_at(99.0)
        assert moved.job_id == job.job_id
        assert moved.release == 99.0

    def test_instantiate_fresh_id(self):
        template = Job.rigid(chain())
        a = template.instantiate(1.0)
        b = template.instantiate(2.0)
        assert a.job_id != b.job_id != template.job_id
        assert a.release == 1.0
        assert b.chains is template.chains

    def test_instantiate_explicit_id(self):
        job = Job.rigid(chain()).instantiate(0.0, job_id=12345)
        assert job.job_id == 12345

    def test_describe(self):
        text = Job.tunable_of([chain("a"), chain("b")], name="demo").describe()
        assert "demo" in text
        assert text.count("->") == 0  # single-task chains have no arrow
        assert "a:" in text
