"""Unit tests for quality composition."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.resources import ProcessorTimeRequest
from repro.errors import ConfigurationError
from repro.model.chain import TaskChain
from repro.model.quality import (
    QualityComposition,
    chain_quality,
    compose_min,
    compose_product,
    compose_sum,
)
from repro.model.task import TaskSpec


def chain_with_qualities(*qs):
    return TaskChain(
        tuple(
            TaskSpec(f"t{i}", ProcessorTimeRequest(1, 1.0), deadline=10.0, quality=q)
            for i, q in enumerate(qs)
        )
    )


class TestCompositions:
    def test_product(self):
        assert compose_product([0.5, 0.8]) == pytest.approx(0.4)

    def test_min(self):
        assert compose_min([0.5, 0.8, 0.9]) == 0.5

    def test_mean(self):
        assert compose_sum([0.5, 0.7]) == pytest.approx(0.6)

    def test_empty_rejected(self):
        for fn in (compose_product, compose_min, compose_sum):
            with pytest.raises(ConfigurationError):
                fn([])

    def test_chain_quality_dispatch(self):
        c = chain_with_qualities(0.5, 0.8)
        assert chain_quality(c) == pytest.approx(0.4)
        assert chain_quality(c, QualityComposition.MIN) == 0.5
        assert chain_quality(c, QualityComposition.MEAN) == pytest.approx(0.65)

    @given(st.lists(st.floats(0.0, 1.0), min_size=1, max_size=6))
    def test_product_bounded_by_min(self, qs):
        assert compose_product(qs) <= compose_min(qs) + 1e-12

    @given(st.lists(st.floats(0.0, 1.0), min_size=1, max_size=6))
    def test_all_compositions_in_unit_interval(self, qs):
        for fn in (compose_product, compose_min, compose_sum):
            assert 0.0 <= fn(qs) <= 1.0 + 1e-12
