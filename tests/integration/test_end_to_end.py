"""End-to-end integration: DSL -> agent -> arbitrator -> runtime -> metrics."""

import pytest

from repro.apps.junction import (
    DEFAULT_CONFIGS,
    junction_program,
    profile_configuration,
    synthetic_image,
)
from repro.apps.junction.tunable import prepare_memory
from repro.calypso import ApplicationManager, CalypsoRuntime
from repro.calypso.faults import FaultInjector
from repro.core.arbitrator import QoSArbitrator
from repro.lang.preprocess import build_agent
from repro.qos.renegotiation import CapacityChange, renegotiate
from repro.sim.rng import RandomStreams
from repro.sim.trace import render_gantt, schedule_records
from repro.workloads.synthetic import SyntheticParams


class TestFullStack:
    def test_junction_program_lifecycle(self):
        """Program -> preprocessor -> negotiation -> parallel execution."""
        image = synthetic_image(size=128, n_junctions=5, seed=21)
        profiles = [profile_configuration(image, c) for c in DEFAULT_CONFIGS]
        program = junction_program(profiles)

        agent = build_agent(program)
        assert agent.tunable

        arbitrator = QoSArbitrator(8)
        manager = ApplicationManager(
            program, CalypsoRuntime(workers=4), prepare_memory(image)
        )
        run = manager.run(arbitrator, release=0.0)
        assert run is not None
        assert manager.memory["junctions"].shape[0] >= 1
        # The arbitrator's schedule reflects the executed reservation.
        assert arbitrator.schedule.committed_jobs == 1
        arbitrator.schedule.check_consistency()

    def test_junction_under_faults(self):
        """The admitted path executes correctly even with injected faults."""
        image = synthetic_image(size=128, n_junctions=5, seed=22)
        profiles = [profile_configuration(image, c) for c in DEFAULT_CONFIGS]
        program = junction_program(profiles)

        injector = FaultInjector(0.4, RandomStreams(5), max_faults_per_task=4)
        clean_mgr = ApplicationManager(
            program, CalypsoRuntime(workers=4), prepare_memory(image)
        )
        clean_mgr.run(QoSArbitrator(8), release=0.0)

        faulty_mgr = ApplicationManager(
            program,
            CalypsoRuntime(workers=4, fault_injector=injector),
            prepare_memory(image),
        )
        run = faulty_mgr.run(QoSArbitrator(8), release=0.0)
        assert run.faults_masked > 0
        import numpy as np

        assert np.array_equal(
            clean_mgr.memory["junctions"], faulty_mgr.memory["junctions"]
        )

    def test_mixed_workload_with_trace(self):
        """Synthetic jobs + junction jobs share one arbitrator; the trace
        and Gantt render coherently."""
        params = SyntheticParams(x=4, t=5.0, alpha=0.5, laxity=0.6)
        arb = QoSArbitrator(8)
        admitted = 0
        for i in range(8):
            if arb.submit(params.tunable_job(release=3.0 * i)).admitted:
                admitted += 1
        records = schedule_records(arb.schedule)
        assert len(records) == 2 * admitted  # two tasks per admitted job
        gantt = render_gantt(arb.schedule)
        assert gantt.count("job") >= admitted

    def test_renegotiation_after_admission(self):
        params = SyntheticParams(x=4, t=5.0, alpha=0.5, laxity=0.6)
        arb = QoSArbitrator(8)
        jobs = {}
        for i in range(8):
            job = params.tunable_job(release=3.0 * i)
            jobs[job.job_id] = job
            arb.submit(job)
        result = renegotiate(arb.schedule, CapacityChange(10.0, 4), jobs)
        result.schedule.profile.check_invariants()
        assert (
            len(result.finished)
            + len(result.carried)
            + len(result.reallocated)
            + len(result.dropped)
            == arb.admitted
        )
