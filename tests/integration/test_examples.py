"""Smoke tests: every shipped example must run cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, f"{name} failed:\n{result.stderr}"
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "ADMITTED" in out
        assert "utilization" in out

    def test_tunable_vs_rigid(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL_SCALE", raising=False)
        out = run_example("tunable_vs_rigid.py")
        assert "tunable" in out and "shape1" in out

    def test_junction_detection(self):
        out = run_example("junction_detection.py")
        assert "granted granularity" in out
        assert "idle machine" in out and "loaded machine" in out

    def test_video_pipeline(self):
        out = run_example("video_pipeline.py")
        assert "on-time" in out

    def test_calypso_fault_masking(self):
        out = run_example("calypso_fault_masking.py")
        assert out.count("True") >= 4  # every fault level commits correctly

    def test_renegotiation(self):
        out = run_example("renegotiation.py")
        assert "capacity drops" in out

    def test_adaptive_refinement(self):
        out = run_example("adaptive_refinement.py")
        assert "MAX_QUALITY" in out
        assert "granted grid 64^2" in out
        assert "granted grid 32^2" in out

    def test_gantt_export(self):
        out = run_example("gantt_export.py")
        assert "wrote" in out and "schedule.svg" in out
