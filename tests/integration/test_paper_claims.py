"""Scaled-down shape assertions for every quantitative claim of Section 5.

These are the reproduction's acceptance tests: each test pins one sentence
of the paper's evaluation prose to a measurable inequality at reduced scale
(600-1,000 arrivals; the full-scale numbers live in EXPERIMENTS.md).
"""

import pytest

from repro.workloads import SweepConfig, run_point
from repro.workloads.sweep import run_sweep
from repro.workloads.synthetic import SyntheticParams

N = 800
SEED = 1999


def cfg(**kw):
    params_kw = {"alpha": 0.5, "laxity": 0.5}
    for key in ("alpha", "laxity"):
        if key in kw:
            params_kw[key] = kw.pop(key)
    config_kw = {"processors": 16, "interval": 30.0, "n_jobs": N, "seed": SEED}
    config_kw.update(kw)
    return SweepConfig(
        params=SyntheticParams(x=16, t=25.0, **params_kw), **config_kw
    )


def throughputs(config):
    return {s: run_point(config, s).throughput for s in ("tunable", "shape1", "shape2")}


class TestFig5aArrivalInterval:
    """"It is in the middle range of arrival intervals ... that the tunable
    system achieves the largest improvement in both utilization and
    throughput."""

    def test_tunable_dominates_at_moderate_load(self):
        t = throughputs(cfg(interval=30.0))
        assert t["tunable"] > t["shape1"]
        assert t["tunable"] > t["shape2"]

    def test_middle_range_peak_benefit(self):
        gaps = {}
        for interval in (10.0, 60.0, 85.0):
            t = throughputs(cfg(interval=interval))
            gaps[interval] = t["tunable"] - max(t["shape1"], t["shape2"])
        # Heavy overload (10): everyone saturated, tiny gap.  Moderate (60):
        # the peak.  Light (85): shrinking again toward full admission.
        assert gaps[60.0] > gaps[10.0]
        assert gaps[60.0] >= gaps[85.0]

    def test_saturated_system_utilization_near_one(self):
        m = run_point(cfg(interval=10.0), "tunable")
        assert m.utilization > 0.95

    def test_large_utilization_gain_exists(self):
        """"up to 30% better system utilization" vs the rigid shapes."""
        u_tun = run_point(cfg(interval=30.0), "tunable").utilization
        u_s1 = run_point(cfg(interval=30.0), "shape1").utilization
        assert u_tun - u_s1 > 0.15


class TestFig5bLaxity:
    """"This improvement goes up with the laxity.  When the laxity is above
    60%, shape 2 packs really well and catches up ... shape 1 ... preventing
    its packing even when deadlines are loose."""

    def test_benefit_grows_with_laxity_over_shape1(self):
        lo = throughputs(cfg(laxity=0.1))
        hi = throughputs(cfg(laxity=0.8))
        gain_lo = lo["tunable"] - lo["shape1"]
        gain_hi = hi["tunable"] - hi["shape1"]
        assert gain_hi > gain_lo

    def test_shape2_catches_up_at_high_laxity(self):
        t = throughputs(cfg(laxity=0.95))
        assert t["tunable"] - t["shape2"] <= 0.03 * N

    def test_shape1_stays_handicapped_at_high_laxity(self):
        t = throughputs(cfg(laxity=0.95))
        assert t["tunable"] - t["shape1"] > 0.1 * N


class TestFig5cProcessors:
    """"The non-tunable shapes are not always able to take advantage of more
    available resources."""

    def test_tunable_dominates_on_small_machine(self):
        t = throughputs(cfg(processors=16))
        assert t["tunable"] > max(t["shape1"], t["shape2"])

    def test_benefit_shrinks_with_more_processors(self):
        small = throughputs(cfg(processors=16))
        large = throughputs(cfg(processors=64))
        gap_small = small["tunable"] - max(small["shape1"], small["shape2"])
        gap_large = large["tunable"] - max(large["shape1"], large["shape2"])
        assert gap_small > gap_large

    def test_everyone_admits_everything_on_huge_machine(self):
        t = throughputs(cfg(processors=64))
        assert t["tunable"] >= 0.99 * N
        assert t["shape1"] >= 0.99 * N


class TestFig5dShape:
    """"Tunability improves performance [when] alpha is not too large (up to
    0.625) ... negligible effect when the resource profiles of alternative
    executions are very similar."""

    def test_benefit_at_small_alpha(self):
        t = throughputs(cfg(alpha=0.25))
        assert t["tunable"] > max(t["shape1"], t["shape2"])

    def test_alpha_one_no_difference(self):
        t = throughputs(cfg(alpha=1.0))
        assert t["tunable"] == t["shape1"] == t["shape2"]

    def test_benefit_negligible_above_pivot(self):
        t = throughputs(cfg(alpha=0.75))
        assert abs(t["tunable"] - t["shape1"]) <= 0.02 * N


class TestFig6Malleable:
    """"tunability achieves less benefit for malleable tasks ... [but] for
    ... moderately overloaded [systems] and jobs that have moderate laxity,
    the tunable task system still yields significant performance
    improvement."""

    def test_malleable_benefit_smaller_than_rigid(self):
        rigid = throughputs(cfg(interval=30.0))
        mall = throughputs(cfg(interval=30.0, malleable=True))
        rigid_gain = rigid["tunable"] - rigid["shape1"]
        mall_gain = mall["tunable"] - mall["shape1"]
        assert mall_gain < rigid_gain

    def test_malleable_benefit_still_positive_at_moderate_load(self):
        mall = throughputs(cfg(interval=30.0, malleable=True))
        assert mall["tunable"] - mall["shape1"] > 0.02 * N
        assert mall["tunable"] - mall["shape2"] > 0.02 * N

    def test_malleability_helps_the_rigid_loser(self):
        """Shape 1 (machine-wide first task) gains most from malleability."""
        rigid = run_point(cfg(interval=30.0), "shape1").throughput
        mall = run_point(cfg(interval=30.0, malleable=True), "shape1").throughput
        assert mall > rigid


class TestCrossCutting:
    def test_admitted_jobs_always_meet_deadlines(self):
        """The simulator verifies deadlines on every admitted job; a clean
        run at heavy overload certifies the predictability guarantee."""
        m = run_point(cfg(interval=8.0), "tunable")
        assert m.offered == N  # no verification exception was raised

    def test_tunable_uses_both_paths(self):
        m = run_point(cfg(interval=30.0), "tunable")
        assert set(m.chain_usage) == {0, 1}
