"""Cross-validation: the greedy heuristic against brute-force references.

The paper states that "under the assumptions of our task model, the
heuristic finds the job configuration which achieves the earliest finish
time."  These tests verify that claim mechanically on randomized small
instances: an exhaustive reference scheduler enumerates *all* candidate
start-time combinations (profile breakpoints) for each chain and computes
the true minimum finish; the greedy must match it, and its chosen
configuration must achieve the minimum across chains.
"""

from __future__ import annotations

import itertools
import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.greedy import GreedyScheduler
from repro.core.malleable import MalleableScheduler
from repro.core.profile import AvailabilityProfile
from repro.core.schedule import Schedule
from repro.model.chain import TaskChain
from repro.model.job import Job
from tests.conftest import loaded_profiles, task_chains


def brute_force_chain_finish(
    profile: AvailabilityProfile, chain: TaskChain, release: float
) -> float | None:
    """True minimum finish time of ``chain`` by exhaustive start search.

    Candidate starts for each task: the earliest-allowed instant plus every
    profile breakpoint after it (optimal schedules only need starts at
    breakpoints or at predecessor finishes, both covered recursively).
    """
    breakpoints = [t for t in profile.breakpoints]

    def best_from(task_idx: int, earliest: float) -> float | None:
        if task_idx == len(chain):
            return earliest  # finish time of the last task
        task = chain[task_idx]
        abs_deadline = release + task.deadline
        candidates = sorted({earliest, *(b for b in breakpoints if b > earliest)})
        best: float | None = None
        for start in candidates:
            finish = start + task.duration
            if finish > abs_deadline + 1e-9:
                continue
            if profile.min_available(start, finish) < task.processors:
                continue
            result = best_from(task_idx + 1, finish)
            if result is not None and (best is None or result < best):
                best = result
        return best

    return best_from(0, max(release, profile.origin))


class TestChainOptimality:
    @given(loaded_profiles(max_capacity=4), task_chains(max_len=2, max_procs=4))
    def test_greedy_matches_brute_force(self, profile, chain):
        schedule = Schedule(profile.capacity)
        schedule.profile._times = list(profile._times)  # noqa: SLF001
        schedule.profile._avail = list(profile._avail)  # noqa: SLF001
        greedy = GreedyScheduler(schedule)
        cp = greedy.place_chain(chain, release=1.0)
        reference = brute_force_chain_finish(profile, chain, release=1.0)
        if cp is None:
            assert reference is None
        else:
            assert reference is not None
            assert math.isclose(cp.finish, reference, abs_tol=1e-9)

    @given(
        loaded_profiles(max_capacity=4),
        st.lists(task_chains(max_len=2, max_procs=4), min_size=2, max_size=3),
    )
    def test_job_choice_achieves_min_finish(self, profile, chains):
        """The chosen configuration's finish equals the min over all chains."""
        schedule = Schedule(profile.capacity)
        schedule.profile._times = list(profile._times)  # noqa: SLF001
        schedule.profile._avail = list(profile._avail)  # noqa: SLF001
        greedy = GreedyScheduler(schedule)
        job = Job.tunable_of(chains, release=0.5)
        chosen = greedy.choose(job)
        per_chain = [
            brute_force_chain_finish(profile, c, release=0.5) for c in chains
        ]
        feasible = [f for f in per_chain if f is not None]
        if chosen is None:
            assert not feasible
        else:
            assert feasible
            assert math.isclose(chosen.finish, min(feasible), abs_tol=1e-9)


class TestMalleableSoundness:
    @given(task_chains(max_len=3, max_procs=8), st.integers(1, 8))
    def test_quick_reject_never_rejects_feasible(self, chain, capacity):
        """_quick_reject is a sound necessary condition: anything it rejects
        is truly unschedulable on an empty machine."""
        schedule = Schedule(capacity)
        scheduler = MalleableScheduler(schedule)
        if scheduler._quick_reject(chain):  # noqa: SLF001
            assert scheduler.place_chain(chain, release=0.0) is None

    @given(task_chains(max_len=3, max_procs=8), st.integers(1, 8))
    def test_rigid_quick_reject_sound(self, chain, capacity):
        schedule = Schedule(capacity)
        scheduler = GreedyScheduler(schedule)
        if scheduler._quick_reject(chain):  # noqa: SLF001
            assert scheduler.place_chain(chain, release=0.0) is None
