"""Unit tests for the hot-path instrumentation layer (:mod:`repro.perf`).

Includes the complexity regression the optimized profile must uphold: the
per-operation *touched-segment* window must track the operation's locality,
not the total segment count (satellite of the windowed-rewrite work).
"""

from __future__ import annotations

import math

import pytest

from repro.core.first_fit import earliest_fit
from repro.core.profile import AvailabilityProfile
from repro.core.schedule import Schedule
from repro.perf import PerfRecorder, ProfileStats, percentile


class TestPercentile:
    def test_empty_is_nan(self):
        assert math.isnan(percentile([], 50))

    def test_extremes(self):
        assert percentile([3.0, 1.0, 2.0], 0) == 1.0
        assert percentile([3.0, 1.0, 2.0], 100) == 3.0

    def test_nearest_rank_median(self):
        assert percentile([4.0, 1.0, 3.0, 2.0], 50) == 2.0
        assert percentile([1.0, 2.0, 3.0], 50) == 2.0

    def test_p95_of_hundred(self):
        samples = [float(i) for i in range(1, 101)]
        assert percentile(samples, 95) == 95.0


class TestProfileStats:
    def test_reset_and_as_dict(self):
        stats = ProfileStats()
        stats.shift_ops += 3
        stats.probes += 1
        d = stats.as_dict()
        assert d["shift_ops"] == 3 and d["probes"] == 1
        stats.reset()
        assert all(v == 0 for v in stats.as_dict().values())

    def test_profile_bumps_counters(self):
        p = AvailabilityProfile(4)
        p.reserve(0.0, 5.0, 2)
        p.release(0.0, 5.0, 2)
        assert p.stats.shift_ops == 2
        assert p.stats.segments_touched >= 2
        earliest_fit(p, 2, 1.0, 0.0)
        assert p.stats.probes == 1
        assert p.stats.probe_segments >= 1

    def test_prefix_rebuilt_once_per_mutation(self):
        p = AvailabilityProfile(4)
        p.reserve(0.0, 5.0, 2)
        for _ in range(5):
            p.free_area(0.0, 10.0)
        assert p.stats.prefix_rebuilds == 1  # burst served from the cache
        p.reserve(20.0, 25.0, 1)  # invalidates
        p.free_area(0.0, 30.0)
        assert p.stats.prefix_rebuilds == 2

    def test_copy_resets_stats(self):
        p = AvailabilityProfile(4)
        p.reserve(0.0, 5.0, 2)
        q = p.copy()
        assert q.stats.shift_ops == 0 and p.stats.shift_ops == 1


class TestTouchedSegmentsLocality:
    """The windowed rewrite touches O(window), not O(total segments)."""

    @staticmethod
    def fragmented(n_reservations: int) -> AvailabilityProfile:
        p = AvailabilityProfile(8)
        for k in range(n_reservations):
            p.reserve(3.0 * k, 3.0 * k + 1.0, 1 + k % 4)
        return p

    def test_touched_window_independent_of_profile_size(self):
        small = self.fragmented(20)
        large = self.fragmented(2_000)
        assert len(large) > 50 * len(small) / 2  # genuinely different scales
        # Identical op at each profile's frontier: same window, same touch
        # count, regardless of how much history sits to the left.
        for p, n_resv in ((small, 20), (large, 2_000)):
            p.stats.reset()
            frontier = 3.0 * n_resv
            p.reserve(frontier + 1.0, frontier + 2.0, 4)
        assert small.stats.last_touched == large.stats.last_touched
        assert large.stats.last_touched <= 3

    def test_mid_profile_touch_tracks_interval_width(self):
        p = self.fragmented(1_000)
        total = len(p)
        p.stats.reset()
        # An op spanning ~4 reservations touches ~a dozen segments at most.
        p.reserve(1500.0, 1512.0, 1)
        assert p.stats.last_touched <= 12
        assert p.stats.last_touched < total / 50


class TestPerfRecorder:
    def test_count_accumulates(self):
        rec = PerfRecorder()
        rec.count("x")
        rec.count("x", 4)
        assert rec.counters["x"] == 5

    def test_observe_and_snapshot_fields(self):
        rec = PerfRecorder()
        for ms in (1.0, 2.0, 3.0):
            rec.observe("decision", ms / 1000.0)
        snap = rec.snapshot()
        assert snap["decision_count"] == 3
        assert snap["decision_s"] == pytest.approx(0.006)
        assert snap["decision_p50_us"] == pytest.approx(2000.0)
        assert snap["decision_p95_us"] == pytest.approx(3000.0)

    def test_timed_context_manager(self):
        rec = PerfRecorder()
        with rec.timed("block"):
            pass
        assert rec.snapshot()["block_count"] == 1
        assert rec.snapshot()["block_s"] >= 0.0

    def test_reset(self):
        rec = PerfRecorder()
        rec.count("x")
        rec.observe("y", 0.5)
        rec.reset()
        assert rec.snapshot() == {}


class TestScheduleSnapshot:
    def test_snapshot_merges_profile_stats(self):
        s = Schedule(4)
        s.profile.reserve(0.0, 5.0, 2)
        snap = s.perf_snapshot()
        assert snap["profile_shift_ops"] == 1
        assert snap["profile_segments"] == len(s.profile)
        with s.perf.timed("decision"):
            pass
        assert s.perf_snapshot()["decision_count"] == 1
