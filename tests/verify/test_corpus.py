"""Replay every committed corpus entry — one parametrized test per file.

A failure here means an admission/placement decision changed or a frozen
metric drifted.  If the change was intentional, re-mint with
``python tools/mint_corpus.py`` and say so in the PR; if not, you just
caught a regression — do not re-mint it away.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.verify.corpus import corpus_entry_failures, corpus_files, replay_corpus_file

CORPUS_DIR = Path(__file__).resolve().parent.parent / "corpus"
ENTRIES = corpus_files(CORPUS_DIR)


def test_corpus_is_populated():
    """The committed corpus must never silently vanish."""
    names = {p.name for p in ENTRIES}
    assert len(ENTRIES) >= 10
    # The load-bearing frozen points: the P=32 deviation pair and the
    # alpha=1.0 coincidence pair from EXPERIMENTS.md.
    for required in (
        "sweep-fig5c-p32-tunable.json",
        "sweep-fig5c-p32-shape1.json",
        "sweep-fig5d-alpha1-tunable.json",
        "sweep-fig5d-alpha1-shape1.json",
    ):
        assert required in names


@pytest.mark.parametrize(
    "path", ENTRIES, ids=[p.stem for p in ENTRIES]
)
def test_corpus_entry_replays_clean(path):
    failures = replay_corpus_file(path)
    assert not failures, f"{path.name}:\n  " + "\n  ".join(failures)


def test_unknown_kind_is_reported_not_crashed():
    assert corpus_entry_failures({"kind": "mystery"}) == [
        "unknown corpus kind 'mystery'"
    ]


def test_unreadable_entry_is_reported_not_crashed(tmp_path):
    bad = tmp_path / "fuzz-bad.json"
    bad.write_text("{not json")
    failures = replay_corpus_file(bad)
    assert failures and "unreadable" in failures[0]


def test_version_gate_rejects_future_workloads():
    failures = corpus_entry_failures(
        {"kind": "workload", "version": 999, "capacity": 4, "jobs": []}
    )
    assert failures == ["unsupported workload version 999"]
