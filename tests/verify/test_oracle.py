"""Cross-validate the branch-and-bound oracle against dense enumeration.

The oracle's exactness rests on a left-shift argument: restricting task
starts to release points plus the subset-sum closure of durations loses
no solutions.  This suite re-derives optima on tiny instances with a
*dense* half-step start grid and a brutally simple usage map — different
candidate set, different feasibility machinery — and requires bit-equal
admitted counts.  Oracle placements must additionally satisfy the
independent auditor.
"""

from __future__ import annotations

import random

import pytest

from repro.core.resources import ProcessorTimeRequest
from repro.model.chain import TaskChain
from repro.model.job import Job
from repro.model.task import TaskSpec
from repro.verify.auditor import ScheduleAuditor
from repro.verify.checks import oracle_chain_placements
from repro.verify.oracle import OracleLimitError, OracleLimits, exhaustive_best

# ---------------------------------------------------------------------------
# Independent dense-grid optimum
# ---------------------------------------------------------------------------

STEP = 0.5  # all generated times are multiples of 0.5 — exact in floats


def dense_optimum(jobs, capacity):
    """Max admitted jobs by exhaustive subset × chain × dense-start search.

    Unlike a greedy feasibility probe, *every* dense-grid placement of an
    admitted chain is enumerated (continuation-passing), so an early job's
    placement choice can never mask a better global solution.  Deadlines
    are relative to each job's release (paper semantics) and must be
    finite — they bound the start candidates.
    """
    usage: dict[int, int] = {}  # slot index -> processors busy
    best = 0

    def place(tasks, earliest, release, cont):
        if not tasks:
            cont()
            return
        task = tasks[0]
        procs, dur = task.request.processors, task.request.duration
        slots = round(dur / STEP)
        start = earliest
        while start + dur <= release + task.deadline + 1e-9:
            s0 = round(start / STEP)
            if all(
                usage.get(s0 + k, 0) + procs <= capacity for k in range(slots)
            ):
                for k in range(slots):
                    usage[s0 + k] = usage.get(s0 + k, 0) + procs
                place(tasks[1:], start + dur, release, cont)
                for k in range(slots):
                    usage[s0 + k] -= procs
            start += STEP

    def go(i, admitted):
        nonlocal best
        if admitted + (len(jobs) - i) <= best:
            return
        if i == len(jobs):
            best = max(best, admitted)
            return
        job = jobs[i]
        for chain in job.chains:
            if any(t.request.processors > capacity for t in chain.tasks):
                continue
            place(
                list(chain.tasks),
                job.release,
                job.release,
                lambda: go(i + 1, admitted + 1),
            )
        go(i + 1, admitted)  # reject branch

    go(0, 0)
    return best


# ---------------------------------------------------------------------------
# Tiny-instance generator (kept deliberately smaller than the fuzzer's)
# ---------------------------------------------------------------------------


def tiny_instance(rng: random.Random):
    """1–3 jobs, finite deadlines with ≤2.0 slack (bounds dense branching)."""
    capacity = rng.randint(2, 4)
    jobs = []
    for j in range(rng.randint(1, 3)):
        release = rng.randint(0, 2) / 2
        chains = []
        for c in range(rng.randint(1, 2)):
            tasks = []
            elapsed = 0.0
            for t in range(rng.randint(1, 2)):
                dur = rng.randint(1, 6) / 2
                elapsed += dur
                deadline = elapsed + rng.randint(0, 4) / 2
                tasks.append(
                    TaskSpec(
                        f"j{j}c{c}t{t}",
                        ProcessorTimeRequest(rng.randint(1, capacity), dur),
                        deadline=deadline,
                    )
                )
            chains.append(TaskChain(tuple(tasks), label=f"c{c}"))
        jobs.append(Job(chains=tuple(chains), release=release))
    return capacity, jobs


@pytest.mark.parametrize("seed", range(30))
def test_oracle_matches_dense_enumeration(seed):
    rng = random.Random(seed)
    capacity, jobs = tiny_instance(rng)
    solution = exhaustive_best(jobs, capacity)
    assert solution.admitted_count == dense_optimum(jobs, capacity), (
        f"seed {seed}: oracle {solution.admitted_count} != dense optimum "
        f"{dense_optimum(jobs, capacity)} (capacity {capacity})"
    )


@pytest.mark.parametrize("seed", range(30))
def test_oracle_placements_pass_independent_audit(seed):
    rng = random.Random(seed + 1000)
    capacity, jobs = tiny_instance(rng)
    solution = exhaustive_best(jobs, capacity)
    report = ScheduleAuditor().audit_placements(
        oracle_chain_placements(solution, jobs), capacity, jobs
    )
    assert report.ok, report.summary()


def test_oracle_rejects_oversized_instances():
    rng = random.Random(0)
    _, jobs = tiny_instance(rng)
    with pytest.raises(OracleLimitError):
        exhaustive_best(jobs, 4, OracleLimits(max_jobs=len(jobs) - 1))


def test_oracle_admits_everything_on_a_loose_machine():
    """Sanity anchor: with huge capacity and loose deadlines, all admit."""
    jobs = [
        Job(
            chains=(
                TaskChain(
                    (
                        TaskSpec(
                            f"t{i}",
                            ProcessorTimeRequest(2, 2.0),
                            deadline=100.0,
                        ),
                    )
                ),
            ),
            release=float(i),
        )
        for i in range(4)
    ]
    solution = exhaustive_best(jobs, 64)
    assert solution.admitted_count == 4


def test_oracle_prefers_feasible_alternative_chain():
    """OR-graph semantics: an infeasible primary chain must not doom a job."""
    impossible = TaskChain(
        (TaskSpec("wide", ProcessorTimeRequest(8, 1.0), deadline=10.0),),
        label="wide",
    )
    fallback = TaskChain(
        (TaskSpec("narrow", ProcessorTimeRequest(1, 1.0), deadline=10.0),),
        label="narrow",
    )
    job = Job(chains=(impossible, fallback), release=0.0)
    solution = exhaustive_best([job], 2)
    assert solution.admitted_count == 1
    assert solution.admitted[job.job_id] == 1
