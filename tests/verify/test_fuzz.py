"""The fuzzer itself: determinism, the check battery, and the shrinker."""

from __future__ import annotations

import random

from repro.verify.fuzz import (
    FuzzCase,
    check_case,
    fuzz,
    load_case,
    persist_failure,
    random_case,
    run_case,
    shrink,
)


def test_package_exports_campaign_driver_as_run_fuzz():
    """``repro.verify.fuzz`` is the submodule; the callable is run_fuzz."""
    import repro.verify

    assert callable(repro.verify.run_fuzz)
    assert repro.verify.run_fuzz is fuzz


def test_fuzz_campaign_is_deterministic():
    a = fuzz(25, seed=5)
    b = fuzz(25, seed=5)
    assert (a.cases, a.failures) == (b.cases, b.failures)


def test_fuzz_smoke_is_clean():
    report = fuzz(40, seed=7, malleable_share=0.25)
    assert report.ok, report.summary()


def test_random_case_round_trips_through_json():
    rng = random.Random(3)
    for _ in range(10):
        case = random_case(rng, max_jobs=4, malleable=rng.random() < 0.5)
        clone = FuzzCase.from_dict(case.to_dict())
        assert clone.case_id == case.case_id
        assert clone.capacity == case.capacity
        assert clone.malleable == case.malleable
        assert len(clone.jobs) == len(case.jobs)


def test_run_case_digest_is_stable_across_backends():
    rng = random.Random(11)
    case = random_case(rng, max_jobs=4)
    digests = {
        run_case(case, backend=backend, audit=False)[0]
        for backend in ("scalar", "vector", "tree")
    }
    assert len(digests) == 1


def test_check_case_flags_nothing_on_known_good_cases():
    rng = random.Random(19)
    for _ in range(5):
        assert check_case(random_case(rng, max_jobs=3)) == []


# ---------------------------------------------------------------------------
# Shrinking
# ---------------------------------------------------------------------------


def _planted_bug(case: FuzzCase) -> bool:
    """A synthetic failure oracle: trips on any ≥2-task chain anywhere.

    Stands in for a real scheduler bug whose trigger is one structural
    feature; everything else in the case is shrinkable noise.
    """
    return any(
        len(chain.tasks) >= 2 for job in case.jobs for chain in job.chains
    )


def test_shrinker_reduces_planted_bug_to_tiny_reproducer():
    rng = random.Random(23)
    # Grow a deliberately bloated case: 8 jobs, at least one multi-task chain.
    while True:
        case = random_case(rng, max_jobs=8)
        if len(case.jobs) >= 6 and _planted_bug(case):
            break
    small = shrink(case, _planted_bug)
    assert _planted_bug(small), "shrinker lost the failure"
    assert len(small.jobs) <= 5, f"reproducer still has {len(small.jobs)} jobs"
    assert len(small.jobs) == 1  # this bug needs exactly one job
    assert sum(len(c.tasks) for j in small.jobs for c in j.chains) <= 2


def test_shrinker_is_a_fixpoint():
    rng = random.Random(29)
    while True:
        case = random_case(rng, max_jobs=6)
        if _planted_bug(case):
            break
    once = shrink(case, _planted_bug)
    twice = shrink(once, _planted_bug)
    assert twice.case_id == once.case_id


def test_persist_and_reload_failure(tmp_path):
    rng = random.Random(31)
    case = random_case(rng, max_jobs=3)
    path = persist_failure(case, ["synthetic failure"], tmp_path)
    assert path.name == f"fuzz-{case.case_id}.json"
    assert load_case(path).case_id == case.case_id


def test_fuzz_writes_shrunk_reproducer_to_corpus(tmp_path, monkeypatch):
    """A failing check during a campaign must land in the corpus dir."""
    import repro.verify.fuzz as fuzz_module

    real_check = fuzz_module.check_case

    def buggy_check(case):
        failures = real_check(case)
        if any(len(c.tasks) >= 2 for j in case.jobs for c in j.chains):
            failures = failures + ["planted: multi-task chain"]
        return failures

    monkeypatch.setattr(fuzz_module, "check_case", buggy_check)
    report = fuzz_module.fuzz(15, seed=13, corpus_dir=tmp_path)
    assert not report.ok
    assert report.corpus_written
    written = list(tmp_path.glob("fuzz-*.json"))
    assert written, "no reproducer was persisted"
    for path in written:
        reloaded = load_case(path)
        assert buggy_check(reloaded), "persisted reproducer does not fail"
        assert len(reloaded.jobs) <= 5, "reproducer was not shrunk"
