"""The opt-in audit hooks: engine, simulators, and the runner post-check."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.arbitrator import QoSArbitrator
from repro.errors import VerificationError
from repro.resilience.events import FaultModel, generate_trace
from repro.resilience.simulator import simulate_resilient
from repro.runner.core import ExperimentRunner, RunnerConfig
from repro.sim.arrivals import PoissonArrivals
from repro.sim.engine import SimulationEngine
from repro.sim.rng import RandomStreams
from repro.sim.simulator import simulate_arrivals
from repro.verify.checks import audited_point, verify_unit
from repro.workloads.sweep import SweepConfig, _job_factory

# Default params need a 16-wide machine (x=16): on fewer processors every
# job is rejected and these tests would audit an empty schedule.
SMALL = SweepConfig(n_jobs=40, processors=16)
PERTURBED = SweepConfig(
    n_jobs=40,
    processors=16,
    faults=FaultModel(fault_rate=0.01, overrun_prob=0.2, burst_rate=0.005),
)


def _arrivals_setup(config, system="tunable"):
    streams = RandomStreams(config.seed)
    process = PoissonArrivals(config.interval, streams)
    factory = _job_factory(config, system)
    arbitrator = QoSArbitrator(
        config.processors, malleable=config.malleable, keep_placements=True
    )
    return streams, process, factory, arbitrator


# ---------------------------------------------------------------------------
# Engine-level hook
# ---------------------------------------------------------------------------


def test_engine_audit_callback_fires_after_every_event():
    seen = []
    eng = SimulationEngine(audit=lambda engine, ev: seen.append((engine.now, ev.kind)))
    eng.on("ping", lambda engine, ev: None)
    eng.at(1.0, "ping")
    eng.at(2.0, "ping")
    eng.at(3.0, "unhandled")  # no kind handler, but still audited
    eng.run()
    assert seen == [(1.0, "ping"), (2.0, "ping"), (3.0, "unhandled")]


def test_engine_audit_exception_aborts_the_run():
    def tripwire(engine, ev):
        if engine.now >= 2.0:
            raise VerificationError("planted")

    eng = SimulationEngine(audit=tripwire)
    eng.on("ping", lambda engine, ev: None)
    for t in (1.0, 2.0, 3.0):
        eng.at(t, "ping")
    with pytest.raises(VerificationError):
        eng.run()
    assert eng.processed == 2  # clock and counters locate the failure
    assert eng.now == 2.0


# ---------------------------------------------------------------------------
# Simulator-level hooks
# ---------------------------------------------------------------------------


def test_arrival_simulator_audit_passes_on_clean_run():
    _, process, factory, arbitrator = _arrivals_setup(SMALL)
    metrics = simulate_arrivals(
        arbitrator, factory, process, SMALL.n_jobs, audit=True
    )
    assert metrics.offered == SMALL.n_jobs
    assert metrics.admitted > 0, "vacuous fixture: audit saw an empty schedule"


def test_arrival_simulator_audit_flags_a_tampered_schedule():
    _, process, factory, arbitrator = _arrivals_setup(SMALL)

    class Tampering:
        """Corrupt the job-count ledger right before the final audit."""

        def __init__(self, real):
            self.real = real

        def times(self, n):
            yield from self.real.times(n)
            arbitrator.schedule._committed_jobs += 1

    with pytest.raises(VerificationError):
        simulate_arrivals(
            arbitrator, factory, Tampering(process), SMALL.n_jobs, audit=True
        )


def test_resilient_simulator_audit_passes_on_perturbed_run():
    streams, process, factory, arbitrator = _arrivals_setup(PERTURBED)
    arrivals = list(process.times(PERTURBED.n_jobs))
    horizon = (arrivals[-1] if arrivals else 0.0) + PERTURBED.params.d2
    trace = generate_trace(
        PERTURBED.faults,
        streams,
        horizon=horizon,
        base_capacity=PERTURBED.processors,
        n_arrivals=PERTURBED.n_jobs,
    )
    assert (
        trace.capacity_events or trace.overruns or trace.bursts
    ), "fixture must actually perturb the run"
    metrics = simulate_resilient(arbitrator, factory, arrivals, trace, audit=True)
    assert metrics.offered >= PERTURBED.n_jobs  # bursts may add arrivals


# ---------------------------------------------------------------------------
# audited_point / verify_unit / runner post-check
# ---------------------------------------------------------------------------


def test_audited_point_metrics_match_unaudited_run():
    from repro.sim.persistence import metrics_to_dict
    from repro.workloads.sweep import run_point

    metrics, report = audited_point(SMALL, "tunable")
    assert report.ok, report.summary()
    assert metrics_to_dict(metrics) == metrics_to_dict(
        run_point(SMALL, "tunable")
    )


def test_audited_point_handles_perturbed_configs():
    metrics, report = audited_point(PERTURBED, "tunable")
    assert report.ok, report.summary()
    assert metrics.offered >= PERTURBED.n_jobs


def test_verify_unit_accepts_honest_metrics():
    metrics, _ = audited_point(SMALL, "shape1")
    report = verify_unit(SMALL, "shape1", metrics)
    assert report.ok


def test_verify_unit_rejects_lying_metrics():
    metrics, _ = audited_point(SMALL, "shape1")
    lie = dataclasses.replace(metrics, admitted=metrics.admitted + 1)
    with pytest.raises(VerificationError, match="admitted"):
        verify_unit(SMALL, "shape1", lie)


def test_runner_post_check_audits_unique_units(tmp_path):
    runner = ExperimentRunner(RunnerConfig(audit=True, cache_dir=tmp_path))
    units = [(SMALL, "tunable"), (SMALL, "shape1"), (SMALL, "tunable")]
    results = runner.run_units(units)
    assert len(results) == 3
    assert runner.perf_snapshot()["units_audited"] == 2  # dedup'd


def test_runner_post_check_catches_poisoned_cache(tmp_path):
    honest = ExperimentRunner(RunnerConfig(cache_dir=tmp_path))
    honest.run_unit(SMALL, "tunable")
    # Poison the single cache entry's admitted count on disk.
    entries = list(tmp_path.rglob("*.json"))
    assert entries
    for path in entries:
        text = path.read_text()
        import json

        payload = json.loads(text)
        payload["metrics"]["admitted"] += 1
        path.write_text(json.dumps(payload))
    auditing = ExperimentRunner(RunnerConfig(audit=True, cache_dir=tmp_path))
    with pytest.raises(VerificationError, match="admitted"):
        auditing.run_unit(SMALL, "tunable")
