"""The auditor must catch every hand-seeded bug — and only those.

Each :mod:`repro.verify.mutants` scenario plants exactly one ledger,
profile, shape or timing inconsistency via raw (unvalidated) commits.  A
mutant the auditor misses is a blind spot; a violation on the clean
baseline is a false positive.  Both fail here.
"""

from __future__ import annotations

import pytest

from repro.verify.auditor import ScheduleAuditor, audit_schedule
from repro.verify.mutants import (
    MUTANT_BUILDERS,
    audit_scenario,
    build_all_mutants,
    clean_baseline,
)

ALL_MUTANTS = build_all_mutants()


def _audit(scenario):
    return audit_schedule(
        scenario.schedule,
        list(scenario.jobs),
        malleable=scenario.malleable,
        match_config=True,
    )


def test_clean_baseline_audits_clean():
    """Clean on both checkers: the schedule audit and the resize audit
    (the baseline carries one valid grow and one valid shrink record)."""
    control = clean_baseline()
    assert control.resizes
    codes = audit_scenario(control)
    assert not codes, sorted(codes)


@pytest.mark.parametrize(
    "scenario", ALL_MUTANTS, ids=[m.name for m in ALL_MUTANTS]
)
def test_mutant_is_flagged_with_expected_code(scenario):
    codes = audit_scenario(scenario)
    assert codes, f"auditor missed mutant {scenario.name}"
    assert scenario.expected_code in codes, (
        f"mutant {scenario.name}: expected violation code "
        f"{scenario.expected_code!r}, got {sorted(codes)}"
    )


def test_selftest_catches_all_mutants():
    """The acceptance-criterion form: N/N mutants caught, zero missed."""
    caught = sum(1 for m in ALL_MUTANTS if audit_scenario(m))
    assert caught == len(ALL_MUTANTS) >= 10


def test_violations_carry_context():
    """Violations are structured records, not bare strings."""
    scenario = next(m for m in ALL_MUTANTS if m.name == "capacity_overshoot")
    report = _audit(scenario)
    v = next(v for v in report.violations if v.code == "capacity")
    assert v.detail
    assert "capacity" in report.summary()


def test_mutant_registry_is_complete():
    """Every registered builder produces a distinct, named scenario."""
    names = [m.name for m in ALL_MUTANTS]
    assert len(names) == len(set(names)) == len(MUTANT_BUILDERS)


def test_auditor_shares_no_scheduler_code():
    """The independence claim: no greedy/admission imports in the auditor."""
    import repro.verify.auditor as auditor_module

    source = open(auditor_module.__file__).read()
    for banned in (
        "repro.core.greedy",
        "repro.core.admission",
        "repro.core.first_fit",
        "from repro.core.profile import",
    ):
        assert banned not in source, f"auditor depends on {banned}"


def test_profile_mode_off_skips_profile_check():
    scenario = next(m for m in ALL_MUTANTS if m.name == "missing_reservation")
    strict = _audit(scenario)
    relaxed = ScheduleAuditor(profile_mode="off", ledger=False).audit(
        scenario.schedule, list(scenario.jobs)
    )
    assert "profile" in strict.codes
    assert "profile" not in relaxed.codes
