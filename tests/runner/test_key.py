"""Unit-key hashing: determinism, round-trips, field sensitivity."""

from dataclasses import replace

import pytest

from repro.core.malleable import MalleableStrategy
from repro.core.policies import TieBreakPolicy
from repro.errors import ConfigurationError
from repro.resilience.events import FaultModel
from repro.resilience.reconfig import ResizePolicy
from repro.runner import sweep_config_from_dict, sweep_config_to_dict, unit_key
from repro.workloads.sweep import SweepConfig


class TestConfigRoundTrip:
    def test_default_round_trip(self):
        cfg = SweepConfig()
        assert sweep_config_from_dict(sweep_config_to_dict(cfg)) == cfg

    def test_nondefault_round_trip(self):
        cfg = SweepConfig(
            processors=48,
            interval=12.5,
            n_jobs=777,
            seed=31,
            malleable=True,
            strategy=MalleableStrategy.EARLIEST_FINISH,
            policy=TieBreakPolicy.PREFIX,
            verify=False,
        )
        back = sweep_config_from_dict(sweep_config_to_dict(cfg))
        assert back == cfg
        assert back.strategy is MalleableStrategy.EARLIEST_FINISH
        assert back.policy is TieBreakPolicy.PREFIX

    def test_json_survives_params(self):
        cfg = replace(SweepConfig(), params=SweepConfig().params.with_alpha(0.25))
        assert sweep_config_from_dict(sweep_config_to_dict(cfg)) == cfg

    def test_faults_round_trip(self):
        cfg = replace(
            SweepConfig(),
            faults=FaultModel(
                fault_rate=3e-4,
                fault_severity=0.375,
                mean_repair=250.0,
                overrun_prob=0.1,
                overrun_excess=0.4,
                burst_rate=1e-4,
                burst_size=3,
            ),
        )
        back = sweep_config_from_dict(sweep_config_to_dict(cfg))
        assert back == cfg
        assert back.faults == cfg.faults

    def test_no_faults_round_trips_as_none(self):
        back = sweep_config_from_dict(sweep_config_to_dict(SweepConfig()))
        assert back.faults is None

    def test_malformed_payload_raises(self):
        with pytest.raises(ConfigurationError, match="malformed"):
            sweep_config_from_dict({"processors": 4})

    def test_resize_fields_round_trip(self):
        cfg = SweepConfig(
            malleable=True,
            resize_policy=ResizePolicy.GROW_SHRINK,
            reconfig_cost=2.5,
            reconfig_cost_per_proc=0.25,
        )
        back = sweep_config_from_dict(sweep_config_to_dict(cfg))
        assert back == cfg
        assert back.resize_policy is ResizePolicy.GROW_SHRINK
        assert back.reconfig_cost == 2.5
        assert back.reconfig_cost_per_proc == 0.25

    def test_pre_v3_payload_defaults_resize_off(self):
        """Configs serialized before the resize fields still deserialize."""
        payload = sweep_config_to_dict(SweepConfig())
        for legacy_absent in (
            "resize_policy",
            "reconfig_cost",
            "reconfig_cost_per_proc",
        ):
            del payload[legacy_absent]
        back = sweep_config_from_dict(payload)
        assert back == SweepConfig()
        assert back.resize_policy is ResizePolicy.OFF
        assert not back.resizing


class TestUnitKey:
    def test_deterministic(self):
        cfg = SweepConfig()
        assert unit_key(cfg, "tunable") == unit_key(SweepConfig(), "tunable")

    def test_hex_sha256(self):
        key = unit_key(SweepConfig(), "shape1")
        assert len(key) == 64
        int(key, 16)  # hex

    def test_system_changes_key(self):
        cfg = SweepConfig()
        assert unit_key(cfg, "tunable") != unit_key(cfg, "shape1")

    @pytest.mark.parametrize(
        "change",
        [
            {"processors": 32},
            {"interval": 31.0},
            {"n_jobs": 123},
            {"seed": 7},
            {"malleable": True},
            {"strategy": MalleableStrategy.EARLIEST_FINISH},
            {"policy": TieBreakPolicy.FIRST},
            {"verify": False},
            {"faults": FaultModel(fault_rate=1e-4)},
            {"faults": FaultModel(overrun_prob=0.2)},
            {"resize_policy": ResizePolicy.GROW_SHRINK},
            {"reconfig_cost": 2.0},
            {"reconfig_cost_per_proc": 0.5},
        ],
    )
    def test_every_config_field_changes_key(self, change):
        base = SweepConfig()
        assert unit_key(base, "tunable") != unit_key(
            replace(base, **change), "tunable"
        )

    @pytest.mark.parametrize(
        "axis,value", [("laxity", 0.3), ("alpha", 0.25), ("fault_rate", 1e-4)]
    )
    def test_params_fields_change_key(self, axis, value):
        base = SweepConfig()
        assert unit_key(base, "tunable") != unit_key(
            base.with_axis(axis, value), "tunable"
        )

    def test_fault_model_fields_change_key(self):
        base = replace(SweepConfig(), faults=FaultModel(fault_rate=1e-4))
        for change in (
            {"fault_severity": 0.5},
            {"mean_repair": 100.0},
            {"overrun_prob": 0.3},
            {"overrun_excess": 0.9},
            {"burst_rate": 2e-4},
            {"burst_size": 8},
        ):
            varied = replace(base, faults=replace(base.faults, **change))
            assert unit_key(base, "tunable") != unit_key(varied, "tunable"), change
