"""Result-cache round trips, corruption handling and counters."""

from repro.runner import ResultCache, unit_key
from repro.workloads.sweep import SweepConfig, run_point


def _metrics():
    return run_point(SweepConfig(n_jobs=60), "tunable")


class TestResultCache:
    def test_round_trip_identical(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = unit_key(SweepConfig(n_jobs=60), "tunable")
        metrics = _metrics()
        cache.put(key, metrics, meta={"system": "tunable"})
        loaded = cache.get(key)
        assert loaded == metrics  # perf is compare=False by design
        assert loaded.chain_usage == dict(metrics.chain_usage)

    def test_miss_on_absent(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("0" * 64) is None
        assert cache.stats()["cache_misses"] == 1
        assert cache.stats()["cache_hits"] == 0

    def test_sharded_layout(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = unit_key(SweepConfig(n_jobs=60), "shape1")
        cache.put(key, _metrics())
        assert cache.path_for(key).exists()
        assert cache.path_for(key).parent.name == key[:2]

    def test_corrupt_entry_is_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = unit_key(SweepConfig(n_jobs=60), "tunable")
        cache.put(key, _metrics())
        cache.path_for(key).write_text("{not json")
        assert cache.get(key) is None
        assert cache.stats()["cache_errors"] == 1

    def test_key_mismatch_is_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = unit_key(SweepConfig(n_jobs=60), "tunable")
        other = unit_key(SweepConfig(n_jobs=60), "shape2")
        cache.put(key, _metrics())
        # Simulate a mis-filed entry: content copied to another address.
        cache.path_for(other).parent.mkdir(parents=True, exist_ok=True)
        cache.path_for(other).write_text(cache.path_for(key).read_text())
        assert cache.get(other) is None

    def test_counters_accumulate(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = unit_key(SweepConfig(n_jobs=60), "tunable")
        cache.put(key, _metrics())
        cache.get(key)
        cache.get(key)
        cache.get("f" * 64)
        stats = cache.stats()
        assert stats["cache_hits"] == 2
        assert stats["cache_misses"] == 1
        assert stats["cache_stores"] == 1
