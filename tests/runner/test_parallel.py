"""Parallel/serial/cached equivalence and failure-path behavior.

The contract under test: however a batch of work units is executed —
in-process, fanned out over worker processes, deduplicated, memoized,
or rescued from a dying pool — the merged results are identical.
"""

from dataclasses import replace

import pytest

import repro.runner.core as runner_core
from repro.runner import ExperimentRunner, RunnerConfig, using_runner
from repro.runner.worker import _crashing_chunk, _interrupting_chunk, _slow_chunk
from repro.workloads.replicate import replicate_point
from repro.workloads.sweep import SweepConfig, run_sweep

#: Small but non-trivial: every unit admits jobs (no NaN metrics).
CFG = SweepConfig(n_jobs=120)
VALUES = (20.0, 35.0, 50.0)


def _rows(sweep):
    return [
        sweep.rows[v][s] for v in sweep.values for s in sweep.systems
    ]


class TestParallelSerialEquivalence:
    def test_sweep_jobs1_vs_jobs4(self, tmp_path):
        serial = run_sweep(
            "interval", VALUES, CFG, runner=ExperimentRunner(RunnerConfig(jobs=1))
        )
        parallel = run_sweep(
            "interval",
            VALUES,
            CFG,
            runner=ExperimentRunner(RunnerConfig(jobs=4, cache_dir=tmp_path)),
        )
        assert serial.values == parallel.values
        assert serial.systems == parallel.systems
        assert _rows(serial) == _rows(parallel)

    def test_sweep_series_bitwise_equal(self, tmp_path):
        serial = run_sweep("interval", VALUES, CFG)
        parallel = run_sweep(
            "interval",
            VALUES,
            CFG,
            runner=ExperimentRunner(RunnerConfig(jobs=2, cache_dir=tmp_path)),
        )
        for system in serial.systems:
            for metric in ("utilization", "throughput", "mean_response"):
                assert serial.series(system, metric) == parallel.series(
                    system, metric
                )

    def test_replicate_point_equivalence(self, tmp_path):
        seeds = (1, 2, 3)
        serial = replicate_point(CFG, seeds)
        parallel = replicate_point(
            CFG,
            seeds,
            runner=ExperimentRunner(RunnerConfig(jobs=4, cache_dir=tmp_path)),
        )
        assert serial.seeds == parallel.seeds
        for metric, systems in serial.metrics.items():
            for system, stat in systems.items():
                assert stat == parallel.metrics[metric][system]

    def test_default_runner_context(self, tmp_path):
        runner = ExperimentRunner(RunnerConfig(jobs=2, cache_dir=tmp_path))
        with using_runner(runner):
            sweep = run_sweep("interval", VALUES[:2], CFG)
        assert runner.perf_snapshot()["units_total"] == 2 * len(sweep.systems)


class TestCacheBehavior:
    def test_second_run_all_hits_and_identical(self, tmp_path):
        cold_runner = ExperimentRunner(RunnerConfig(jobs=1, cache_dir=tmp_path))
        cold = run_sweep("interval", VALUES, CFG, runner=cold_runner)
        warm_runner = ExperimentRunner(RunnerConfig(jobs=1, cache_dir=tmp_path))
        warm = run_sweep("interval", VALUES, CFG, runner=warm_runner)
        assert _rows(cold) == _rows(warm)
        snap = warm_runner.perf_snapshot()
        n_units = len(VALUES) * len(cold.systems)
        assert snap["cache_hits"] == n_units
        assert snap["cache_misses"] == 0
        assert snap.get("units_executed_inline", 0) == 0

    @pytest.mark.parametrize(
        "change",
        [
            {"n_jobs": 121},
            {"seed": 9},
            {"processors": 17},
            {"malleable": True},
            {"verify": False},
        ],
    )
    def test_any_config_change_invalidates(self, tmp_path, change):
        first = ExperimentRunner(RunnerConfig(cache_dir=tmp_path))
        run_sweep("interval", VALUES[:1], CFG, runner=first)
        second = ExperimentRunner(RunnerConfig(cache_dir=tmp_path))
        run_sweep(
            "interval", VALUES[:1], replace(CFG, **change), runner=second
        )
        snap = second.perf_snapshot()
        assert snap["cache_hits"] == 0
        assert snap["cache_misses"] == len(VALUES[:1]) * 3

    def test_cross_experiment_overlap_hits(self, tmp_path):
        # A coarser grid over the same axis is a subset of a finer one —
        # the fig6a/fig5a relationship that motivates the shared cache.
        fine = ExperimentRunner(RunnerConfig(cache_dir=tmp_path))
        run_sweep("interval", (20.0, 30.0, 40.0), CFG, runner=fine)
        coarse = ExperimentRunner(RunnerConfig(cache_dir=tmp_path))
        run_sweep("interval", (20.0, 40.0), CFG, runner=coarse)
        snap = coarse.perf_snapshot()
        assert snap["cache_hits"] == 2 * 3
        assert snap["cache_misses"] == 0

    def test_dedup_within_one_batch(self):
        runner = ExperimentRunner(RunnerConfig())
        metrics = runner.run_units(
            [(CFG, "tunable"), (CFG, "shape1"), (CFG, "tunable")]
        )
        assert metrics[0] == metrics[2]
        snap = runner.perf_snapshot()
        assert snap["dedup_hits"] == 1
        assert snap["units_executed_inline"] == 2


class TestFailurePaths:
    def test_worker_crash_falls_back_in_process(self, tmp_path):
        serial = run_sweep("interval", VALUES[:2], CFG)
        broken = ExperimentRunner(
            RunnerConfig(jobs=2, cache_dir=tmp_path, retries=1),
            _chunk_fn=_crashing_chunk,
        )
        rescued = run_sweep("interval", VALUES[:2], CFG, runner=broken)
        assert _rows(serial) == _rows(rescued)
        snap = broken.perf_snapshot()
        assert snap["pool_chunk_failures"] >= 1
        assert snap["pool_fallback_units"] == 2 * len(serial.systems)
        assert snap["units_executed_inline"] == 2 * len(serial.systems)

    def test_retry_backoff_is_deterministic_and_counted(self, tmp_path):
        def run(seed):
            broken = ExperimentRunner(
                RunnerConfig(
                    jobs=2,
                    retries=2,
                    backoff_base=0.002,
                    backoff_cap=0.008,
                    backoff_seed=seed,
                ),
                _chunk_fn=_crashing_chunk,
            )
            run_sweep("interval", VALUES[:1], CFG, runner=broken)
            return broken.perf_snapshot()

        a, b, c = run(3), run(3), run(4)
        assert a["pool_retries"] == b["pool_retries"] == 2
        # Same seed → bit-identical total sleep; different seed → different
        # jitter.  Either way the honest total is surfaced in the snapshot.
        assert a["retry_backoff_total"] == b["retry_backoff_total"] > 0
        assert c["retry_backoff_total"] != a["retry_backoff_total"]

    def test_zero_backoff_base_disables_sleep(self):
        broken = ExperimentRunner(
            RunnerConfig(jobs=2, retries=1, backoff_base=0.0),
            _chunk_fn=_crashing_chunk,
        )
        run_sweep("interval", VALUES[:1], CFG, runner=broken)
        snap = broken.perf_snapshot()
        assert snap["pool_retries"] == 1
        assert "retry_backoff_total" not in snap

    def test_chunk_timeout_falls_back_in_process(self):
        serial = run_sweep("interval", VALUES[:1], CFG)
        slow = ExperimentRunner(
            RunnerConfig(jobs=2, timeout=0.2, retries=0),
            _chunk_fn=_slow_chunk,
        )
        rescued = run_sweep("interval", VALUES[:1], CFG, runner=slow)
        assert _rows(serial) == _rows(rescued)
        assert slow.perf_snapshot()["pool_chunk_failures"] >= 1

    def test_inline_interrupt_flushes_completed_units(
        self, tmp_path, monkeypatch
    ):
        """Ctrl-C between inline units loses only the unit in flight."""
        real_run_point = runner_core.run_point
        calls = {"n": 0}

        def interrupting_run_point(config, system):
            calls["n"] += 1
            if calls["n"] == 3:
                raise KeyboardInterrupt
            return real_run_point(config, system)

        monkeypatch.setattr(runner_core, "run_point", interrupting_run_point)
        units = [(CFG.with_axis("interval", v), "tunable") for v in VALUES]
        interrupted = ExperimentRunner(RunnerConfig(jobs=1, cache_dir=tmp_path))
        with pytest.raises(KeyboardInterrupt):
            interrupted.run_units(units)
        snap = interrupted.perf_snapshot()
        assert snap["interrupted_batches"] == 1
        assert snap["cache_stores"] == 2  # the two completed units

        monkeypatch.setattr(runner_core, "run_point", real_run_point)
        resumed = ExperimentRunner(RunnerConfig(jobs=1, cache_dir=tmp_path))
        metrics = resumed.run_units(units)
        assert len(metrics) == len(units)
        snap = resumed.perf_snapshot()
        assert snap["cache_hits"] == 2
        assert snap["cache_misses"] == 1

    def test_pool_interrupt_cancels_and_flushes(self, tmp_path):
        """A worker-relayed Ctrl-C re-raises after flushing earlier chunks.

        The interrupting unit is submitted last (chunk_size=1 keeps units
        in their own chunks, results are consumed in submission order),
        so every earlier unit's result is flushed before the interrupt
        propagates.
        """
        units = [(CFG.with_axis("interval", v), "tunable") for v in VALUES]
        units.append((CFG, "shape2"))  # the marked interrupter, last
        interrupted = ExperimentRunner(
            RunnerConfig(jobs=2, cache_dir=tmp_path, chunk_size=1),
            _chunk_fn=_interrupting_chunk,
        )
        with pytest.raises(KeyboardInterrupt):
            interrupted.run_units(units)
        snap = interrupted.perf_snapshot()
        assert snap["pool_interrupts"] == 1
        assert snap["interrupted_batches"] == 1
        assert snap["cache_stores"] == len(VALUES)

        resumed = ExperimentRunner(RunnerConfig(jobs=1, cache_dir=tmp_path))
        metrics = resumed.run_units(units[:-1])
        assert len(metrics) == len(VALUES)
        snap = resumed.perf_snapshot()
        assert snap["cache_hits"] == len(VALUES)
        assert snap["cache_misses"] == 0

    def test_perf_snapshot_shape(self, tmp_path):
        runner = ExperimentRunner(RunnerConfig(jobs=2, cache_dir=tmp_path))
        run_sweep("interval", VALUES[:2], CFG, runner=runner)
        snap = runner.perf_snapshot()
        assert snap["units_total"] == 2 * 3
        assert snap["unit_count"] == 2 * 3
        assert snap["unit_p50_us"] > 0
        assert snap["unit_p95_us"] >= snap["unit_p50_us"]
        assert snap["cache_stores"] == 2 * 3
