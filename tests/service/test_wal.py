"""WAL framing, torn-tail semantics, checkpoints, and the fail-point."""

from __future__ import annotations

import json
import random
import zlib

import pytest

from repro.errors import WalCorruptionError
from repro.service.wal import (
    LedgerEntry,
    WriteAheadLog,
    read_checkpoint,
    read_wal,
    records_to_entries,
    write_checkpoint,
)
from repro.sim.persistence import job_to_dict
from repro.verify.fuzz import random_case


def _entries(n=3, seed=0):
    case = random_case(random.Random(seed), max_jobs=max(n, 2))
    jobs = (list(case.jobs) * n)[:n]
    return [
        LedgerEntry(seq=i + 1, request_id=f"r{i}", qos=i % 3,
                    degraded=bool(i % 2), job=job)
        for i, job in enumerate(jobs)
    ]


DEC = (True, 0, ((0.0, 2, 3.0), (3.0, 1, 1.5)))
REJ = (False, None, ())


def test_wal_round_trips_jobs_and_decisions(tmp_path):
    entries = _entries(3)
    wal = WriteAheadLog(tmp_path)
    wal.append_jobs(entries)
    wal.append_decisions([1, 2, 3], [DEC, REJ, DEC])
    wal.close()

    records, truncated = read_wal(tmp_path / "wal.log")
    assert truncated == 0
    loaded = records_to_entries(records)
    assert [(e.seq, e.request_id, e.qos, e.degraded) for e in loaded] == [
        (e.seq, e.request_id, e.qos, e.degraded) for e in entries
    ]
    assert [e.decision for e in loaded] == [DEC, REJ, DEC]
    assert [job_to_dict(e.job) for e in loaded] == [
        job_to_dict(e.job) for e in entries
    ]


def test_fast_jobs_encoding_is_byte_identical_to_reference(tmp_path):
    """The cached-fragment assembly must match the plain dict encoding.

    ``append_jobs`` builds its record from ``_entry_json`` (identity-
    cached chain fragments, inline float reprs); the bytes on disk must
    be exactly what encoding ``{"k": "jobs", "jobs": [job_record()...]}``
    through the reference JSON encoder would produce — including awkward
    strings that force the escape fallback, and repeated (shared) chain
    objects that exercise the cache-hit path.
    """
    from repro.workloads.synthetic import SyntheticParams
    from repro.service.wal import _dumps, _frame

    params = SyntheticParams(x=16, t=25.0, alpha=0.5, laxity=0.5)
    shared = [params.tunable_job(float(i)) for i in range(4)]
    assert shared[0].chains[0] is shared[1].chains[0]  # cache-hit fuel
    odd = _entries(3, seed=7)
    entries = [
        LedgerEntry(seq=i + 1, request_id=rid, qos=i % 3,
                    degraded=bool(i % 2), job=job)
        for i, (rid, job) in enumerate(
            zip(
                ['plain', 'quo"te', 'back\\slash', 'uni-é', 'ctrl-\n',
                 'r5', 'r6'],
                shared + [e.job for e in odd],
            )
        )
    ]
    wal = WriteAheadLog(tmp_path, fsync=False)
    wal.append_jobs(entries)
    wal.close()

    reference = _frame(
        _dumps(
            {"k": "jobs", "jobs": [e.job_record() for e in entries]}
        ).encode("utf-8")
    )
    assert (tmp_path / "wal.log").read_bytes() == reference

    records, truncated = read_wal(tmp_path / "wal.log")
    assert truncated == 0
    loaded = records_to_entries(records)
    assert [(e.seq, e.request_id) for e in loaded] == [
        (e.seq, e.request_id) for e in entries
    ]
    assert [job_to_dict(e.job) for e in loaded] == [
        job_to_dict(e.job) for e in entries
    ]


def test_torn_tail_is_tolerated_and_repaired(tmp_path):
    entries = _entries(2)
    wal = WriteAheadLog(tmp_path)
    wal.append_jobs(entries)
    wal.close()
    path = tmp_path / "wal.log"
    good = path.read_bytes()
    path.write_bytes(good + b"deadbeef {\"k\":\"job\",\"seq\":99")  # torn

    records, truncated = read_wal(path, repair=True)
    assert truncated > 0
    assert len(records) == 1  # the whole batch is one framed record
    assert len(records_to_entries(records)) == 2
    assert path.read_bytes() == good  # physically repaired
    assert read_wal(path) == (records, 0)


def test_damage_before_valid_records_is_corruption(tmp_path):
    entries = _entries(2)
    wal = WriteAheadLog(tmp_path)
    wal.append_jobs(entries)
    wal.append_decisions([1, 2], [DEC, REJ])  # a valid record *after* it
    wal.close()
    path = tmp_path / "wal.log"
    data = bytearray(path.read_bytes())
    data[15] ^= 0xFF  # flip a byte inside the *first* record's body
    path.write_bytes(bytes(data))
    with pytest.raises(WalCorruptionError):
        read_wal(path)


def test_records_to_entries_dedup_and_conflicts(tmp_path):
    entries = _entries(1)
    job_rec = entries[0].job_record()
    dup = dict(job_rec)
    dec = {"k": "dec", "seqs": [1], "dec": [[True, 0, [[0.0, 2, 3.0]]]]}
    same = records_to_entries([job_rec, dup, dec, dec])
    assert len(same) == 1 and same[0].decision == (True, 0, ((0.0, 2, 3.0),))

    with pytest.raises(WalCorruptionError):  # decision for unknown seq
        records_to_entries([{"k": "dec", "seqs": [7], "dec": [[False, None, []]]}])
    conflict = {"k": "dec", "seqs": [1], "dec": [[False, None, []]]}
    with pytest.raises(WalCorruptionError):
        records_to_entries([job_rec, dec, conflict])
    with pytest.raises(WalCorruptionError):
        records_to_entries([{"k": "mystery"}])


def test_checkpoint_round_trip_truncation_and_watermark(tmp_path):
    entries = _entries(3)
    for e in entries:
        e.decision = REJ
    wal = WriteAheadLog(tmp_path)
    wal.append_jobs(entries)
    wal.append_decisions([e.seq for e in entries], [e.decision for e in entries])
    write_checkpoint(tmp_path, entries)
    wal.truncate()
    wal.close()

    assert (tmp_path / "wal.log").stat().st_size == 0
    loaded, through = read_checkpoint(tmp_path)
    assert through == 3
    assert [(e.seq, e.request_id, e.decision) for e in loaded] == [
        (e.seq, e.request_id, e.decision) for e in entries
    ]
    # Records at or below the watermark are checkpoint-covered: skipped.
    assert records_to_entries([entries[0].job_record()], min_seq=through) == []


def test_checkpoint_checksum_and_version_guards(tmp_path):
    entries = _entries(1)
    entries[0].decision = REJ
    write_checkpoint(tmp_path, entries)
    path = tmp_path / "checkpoint.json"

    wrapper = json.loads(path.read_text())
    wrapper["data"]["through_seq"] = 99  # tamper without re-hashing
    path.write_text(json.dumps(wrapper))
    with pytest.raises(WalCorruptionError):
        read_checkpoint(tmp_path)

    path.write_text("not json at all")
    with pytest.raises(WalCorruptionError):
        read_checkpoint(tmp_path)

    missing = tmp_path / "fresh"
    missing.mkdir()
    assert read_checkpoint(missing) == ([], 0)


def test_partial_write_failpoint_tears_exactly_one_append(tmp_path):
    entries = _entries(2)
    wal = WriteAheadLog(tmp_path)
    wal.append_jobs(entries)
    wal.partial_write_after = 1
    with pytest.raises(OSError):
        wal.append_decisions([1, 2], [DEC, REJ])
    wal.abandon()

    records, truncated = read_wal(tmp_path / "wal.log", repair=True)
    assert truncated > 0  # the torn decision frame
    loaded = records_to_entries(records)
    assert [e.decision for e in loaded] == [None, None]  # jobs survive, undecided


def test_crc_framing_rejects_bit_rot(tmp_path):
    body = json.dumps({"k": "dec", "seqs": [], "dec": []}).encode()
    line = b"%08x " % (zlib.crc32(body) & 0xFFFFFFFF) + body + b"\n"
    path = tmp_path / "wal.log"
    path.write_bytes(line)
    records, _ = read_wal(path)
    assert records == [{"k": "dec", "seqs": [], "dec": []}]
    path.write_bytes(b"00000000 " + body + b"\n" + line)
    with pytest.raises(WalCorruptionError):
        read_wal(path)
