"""The committed chaos scenario set is the contract: every scenario must
recover to a bit-identical, auditor-clean ledger."""

from __future__ import annotations

import pytest

from repro.service.chaos import (
    SCENARIOS,
    ChaosScenario,
    chaos_workload,
    main,
    rotate,
    run_scenario,
)


def test_committed_scenario_set_is_large_and_diverse():
    assert len(SCENARIOS) >= 20
    assert len({s.name for s in SCENARIOS}) == len(SCENARIOS)
    assert any(s.partial_write_after is not None for s in SCENARIOS)
    assert any(s.crash_after_acks is not None for s in SCENARIOS)
    assert any(s.permanent_fail_after is not None for s in SCENARIOS)
    assert any(s.dup_prob > 0 for s in SCENARIOS)
    assert any(s.drop_prob > 0 for s in SCENARIOS)
    assert any(s.tight_deadline_share > 0 for s in SCENARIOS)
    assert any(s.malleable for s in SCENARIOS)
    assert any(s.checkpoint_every > 0 for s in SCENARIOS)


@pytest.mark.parametrize("scenario", SCENARIOS, ids=lambda s: s.name)
def test_scenario_recovers_clean(scenario):
    result = run_scenario(scenario)
    assert result.ok, result.summary()


def test_chaos_workload_is_deterministic():
    import random

    a = chaos_workload(random.Random(3), 9, False)
    b = chaos_workload(random.Random(3), 9, False)
    assert a[0] == b[0]
    assert [(j.release, j.chains) for j in a[1]] == [
        (j.release, j.chains) for j in b[1]
    ]


def test_rotate_reseeds_without_touching_fault_script():
    rotated = rotate(SCENARIOS, 7)
    assert [s.seed for s in rotated] != [s.seed for s in SCENARIOS]
    assert [s.partial_write_after for s in rotated] == [
        s.partial_write_after for s in SCENARIOS
    ]
    assert rotate(SCENARIOS, 0) == list(SCENARIOS)


def test_cli_list_and_unknown_scenario(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "kill-early" in out and "torn-decision-append" in out
    assert main(["--only", "no-such-scenario"]) == 2


def test_cli_runs_single_scenario_and_writes_no_reproducer(tmp_path, capsys):
    repro_dir = tmp_path / "repro"
    assert main(["--only", "baseline-small", "--reproducers", str(repro_dir)]) == 0
    assert not repro_dir.exists()  # only failures produce artifacts
    assert "1/1 scenarios clean" in capsys.readouterr().out


def test_failing_scenario_writes_reproducer(tmp_path, monkeypatch):
    import json

    import repro.service.chaos as chaos_mod

    broken = ChaosScenario(name="always-broken", seed=1)

    def fake_run(scenario, wal_dir=None):
        return chaos_mod.ChaosResult(
            scenario=scenario.name,
            seed=scenario.seed,
            ok=False,
            failures=("synthetic failure",),
            crash="none",
            entries=0,
            redecided=0,
            truncated_bytes=0,
        )

    monkeypatch.setattr(chaos_mod, "run_scenario", fake_run)
    results = chaos_mod.run_campaign(
        [broken], reproducers=tmp_path, verbose=False, salt=3
    )
    assert not results[0].ok
    payload = json.loads((tmp_path / "always-broken.json").read_text())
    assert payload["failures"] == ["synthetic failure"]
    assert "--rotate 3" in payload["repro"]
