"""Crash recovery: bit-identical replay, audit gating, idempotence."""

from __future__ import annotations

import asyncio
import random
from dataclasses import replace

import pytest

from repro.errors import VerificationError, WalCorruptionError
from repro.service.chaos import chaos_workload
from repro.service.recovery import recover
from repro.service.service import AdmissionService, ServiceConfig, make_arbitrator
from repro.service.wal import (
    LedgerEntry,
    WriteAheadLog,
    decision_to_tuple,
    read_wal,
)
from repro.verify.checks import verify_replay


def _workload(seed=21, n=14, malleable=False):
    return chaos_workload(random.Random(seed), n, malleable)


def _run_service(config, wal_dir, jobs, *, kill_after=None, decide=None):
    async def run():
        kw = {} if decide is None else {"decide": decide}
        service = AdmissionService(config, wal_dir, **kw)
        service.start()
        answers = []
        for i, job in enumerate(jobs):
            fut = await service.enqueue(job, request_id=f"req-{i}")
            answers.append(fut)
            # Lock-step with the drain loop: wait until everything
            # enqueued so far is acked, so kill_after fires at a
            # deterministic point in the decision sequence.
            for _ in range(2000):
                if (
                    service.counters["acked"] >= len(answers)
                    or not service.running
                ):
                    break
                await asyncio.sleep(0.0002)
            if kill_after is not None and service.counters["acked"] >= kill_after:
                service.kill()
                break
        if service.running:
            await service.stop()
        done = [f.result() for f in answers if f.done() and not f.exception()]
        return service, done

    return asyncio.run(run())


def test_recover_reproduces_graceful_ledger_bit_identically(tmp_path):
    capacity, jobs = _workload()
    config = ServiceConfig(capacity=capacity)
    service, _ = _run_service(config, tmp_path, jobs)

    state = recover(tmp_path, config)
    assert state.report.ok and state.redecided == 0
    assert [(e.seq, e.request_id, e.decision) for e in state.entries] == [
        (e.seq, e.request_id, e.decision) for e in service.entries
    ]
    assert [decision_to_tuple(d) for d in state.decisions] == [
        e.decision for e in service.entries
    ]


def test_recover_after_kill_preserves_every_acked_decision(tmp_path):
    capacity, jobs = _workload(seed=22, n=20)
    config = ServiceConfig(capacity=capacity, max_batch=2)
    _, acked = _run_service(config, tmp_path, jobs, kill_after=6)
    assert acked  # the crash happened mid-run, with acks outstanding

    state = recover(tmp_path, config)
    by_rid = {e.request_id: e.decision for e in state.entries}
    for answer in acked:
        if answer.decision is not None:
            assert by_rid[answer.request_id] == decision_to_tuple(answer.decision)

    # Idempotent: recovering again changes nothing.
    again = recover(tmp_path, config)
    assert [(e.seq, e.decision) for e in again.entries] == [
        (e.seq, e.decision) for e in state.entries
    ]


def test_recover_redecides_torn_decision_append_and_persists_it(tmp_path):
    capacity, jobs = _workload(seed=23, n=10)
    config = ServiceConfig(capacity=capacity, max_batch=2)

    def run_with_tear():
        async def run():
            service = AdmissionService(config, tmp_path)
            service.wal.partial_write_after = 4  # the 2nd decision append
            service.start()
            futures = [
                await service.enqueue(job, request_id=f"req-{i}")
                for i, job in enumerate(jobs)
            ]
            for fut in futures:
                fut.add_done_callback(lambda f: f.exception())
            while service.running:
                await asyncio.sleep(0.001)
            return service

        return asyncio.run(run())

    run_with_tear()
    records, truncated = read_wal(tmp_path / "wal.log")
    assert truncated > 0  # the torn frame is on disk

    state = recover(tmp_path, config)
    assert state.redecided > 0 and state.truncated_bytes > 0
    assert all(e.decision is not None for e in state.entries)

    # The re-decided tail was durably re-logged: a second recovery has
    # nothing left to decide and agrees bit-for-bit.
    again = recover(tmp_path, config)
    assert again.redecided == 0 and again.truncated_bytes == 0
    assert [(e.seq, e.decision) for e in again.entries] == [
        (e.seq, e.decision) for e in state.entries
    ]


def test_recover_uses_checkpoint_and_watermark(tmp_path):
    capacity, jobs = _workload(seed=24, n=16)
    config = ServiceConfig(capacity=capacity, max_batch=4, checkpoint_every=4)
    service, _ = _run_service(config, tmp_path, jobs)
    assert service.counters["checkpoints"] >= 1

    state = recover(tmp_path, config)
    assert state.report.ok
    assert [(e.seq, e.decision) for e in state.entries] == [
        (e.seq, e.decision) for e in service.entries
    ]


def test_restart_from_recovered_state_continues_the_sequence(tmp_path):
    capacity, jobs = _workload(seed=25, n=18)
    config = ServiceConfig(capacity=capacity, max_batch=2)
    _run_service(config, tmp_path, jobs, kill_after=5)
    state = recover(tmp_path, config)
    decided_before = len(state.entries)
    assert 0 < decided_before < len(jobs)

    async def retry_everything():
        service = AdmissionService(config, tmp_path, recovered=state)
        service.start()
        answers = [
            await service.submit(job, request_id=f"req-{i}")
            for i, job in enumerate(jobs)
        ]
        await service.stop()
        return service, answers

    service, answers = asyncio.run(retry_everything())
    assert service.counters["duplicates"] == decided_before
    final = recover(tmp_path, config)
    assert final.report.ok
    assert len(final.entries) == len(jobs)
    assert len({e.request_id for e in final.entries}) == len(jobs)
    by_rid = {e.request_id: e.decision for e in final.entries}
    for i, answer in enumerate(answers):
        assert by_rid[f"req-{i}"] == decision_to_tuple(answer.decision)


def test_recovery_rejects_a_ledger_that_cannot_be_reproduced(tmp_path):
    capacity, jobs = _workload(seed=26, n=4)
    config = ServiceConfig(capacity=capacity)
    wal = WriteAheadLog(tmp_path)
    entries = [
        LedgerEntry(seq=i + 1, request_id=f"req-{i}", qos=0, degraded=False, job=job)
        for i, job in enumerate(jobs)
    ]
    wal.append_jobs(entries)
    # Log decisions that no deterministic replay could produce.
    wal.append_decisions(
        [e.seq for e in entries],
        [(True, 0, ((123.0, 999, 1.0),))] * len(entries),
    )
    wal.close()
    with pytest.raises(VerificationError):
        recover(tmp_path, config)


def test_recovery_rejects_checkpoint_hiding_undecided_entries(tmp_path):
    capacity, jobs = _workload(seed=27, n=2)
    config = ServiceConfig(capacity=capacity)
    from repro.service.wal import write_checkpoint

    entries = [
        LedgerEntry(seq=1, request_id="req-0", qos=0, degraded=False, job=jobs[0])
    ]
    write_checkpoint(tmp_path, entries)  # decision is still None
    with pytest.raises(WalCorruptionError):
        recover(tmp_path, config)


def test_verify_replay_flags_divergence_and_audits(tmp_path):
    capacity, jobs = _workload(seed=28, n=6)
    config = ServiceConfig(capacity=capacity)
    reference = make_arbitrator(config)
    expected = [decision_to_tuple(reference.submit(job)) for job in jobs]

    decisions, report = verify_replay(
        make_arbitrator(config), list(jobs), expected
    )
    assert report.ok and len(decisions) == len(jobs)

    tampered = list(expected)
    tampered[0] = (not expected[0][0], None, ())
    with pytest.raises(VerificationError):
        verify_replay(make_arbitrator(config), list(jobs), tampered)
    with pytest.raises(VerificationError):
        verify_replay(make_arbitrator(config), list(jobs), expected[:-1])
