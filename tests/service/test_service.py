"""The asyncio front-end: batching, dedup, shedding, degrade, deadlines,
retry/backoff, and fail-stop semantics."""

from __future__ import annotations

import asyncio
import random
from dataclasses import replace

import pytest

from repro.core.policies import TieBreakPolicy
from repro.errors import (
    ConfigurationError,
    ServiceUnavailableError,
    TransientWorkerError,
)
from repro.service.chaos import chaos_workload
from repro.service.service import (
    AdmissionService,
    ServiceConfig,
    ServiceOutcome,
    degrade_job,
    make_arbitrator,
)
from repro.service.wal import decision_to_tuple


def _workload(seed=11, n=12, malleable=False):
    return chaos_workload(random.Random(seed), n, malleable)


def _config(capacity, **kw):
    kw.setdefault("backoff_base", 0.0002)
    kw.setdefault("backoff_cap", 0.002)
    return ServiceConfig(capacity=capacity, **kw)


async def _submit_all(service, jobs, **kw):
    service.start()
    out = []
    for i, job in enumerate(jobs):
        out.append(await service.submit(job, request_id=f"req-{i}", **kw))
    return out


def test_random_tie_break_policy_is_rejected():
    with pytest.raises(ConfigurationError):
        ServiceConfig(capacity=4, policy=TieBreakPolicy.RANDOM)
    with pytest.raises(ConfigurationError):
        ServiceConfig(capacity=4, queue_limit=0)
    with pytest.raises(ConfigurationError):
        ServiceConfig(capacity=4, degrade_keep=0)


def test_service_decisions_match_direct_serial_arbitrator(tmp_path):
    capacity, jobs = _workload()
    config = _config(capacity)

    async def run():
        service = AdmissionService(config, tmp_path)
        answers = await _submit_all(service, jobs)
        await service.stop()
        return answers, service

    answers, service = asyncio.run(run())
    direct = make_arbitrator(config)
    for job, answer in zip(jobs, answers):
        assert answer.outcome in (ServiceOutcome.ADMITTED, ServiceOutcome.REJECTED)
        assert decision_to_tuple(answer.decision) == decision_to_tuple(
            direct.submit(job)
        )
    assert service.stats()["acked"] == len(jobs)
    # One fsync per decision batch hardens both its WAL records.
    assert service.stats()["wal_syncs"] >= service.stats()["batches"]
    assert service.stats()["wal_appends"] >= 2 * service.stats()["batches"]


def test_pipelined_submissions_batch_and_still_match_serial(tmp_path):
    capacity, jobs = _workload(seed=12, n=20)
    config = _config(capacity, max_batch=8)

    async def run():
        service = AdmissionService(config, tmp_path)
        service.start()
        futures = [
            await service.enqueue(job, request_id=f"req-{i}")
            for i, job in enumerate(jobs)
        ]
        answers = await asyncio.gather(*futures)
        await service.stop()
        return answers, service.stats()

    answers, stats = asyncio.run(run())
    assert stats["batches"] < len(jobs)  # coalescing actually happened
    direct = make_arbitrator(config)
    for job, answer in zip(jobs, answers):
        assert decision_to_tuple(answer.decision) == decision_to_tuple(
            direct.submit(job)
        )


def test_duplicate_request_ids_are_idempotent(tmp_path):
    capacity, jobs = _workload(n=4)
    config = _config(capacity)

    async def run():
        service = AdmissionService(config, tmp_path)
        service.start()
        first = await service.submit(jobs[0], request_id="dup")
        again = await service.submit(jobs[0], request_id="dup")
        # Duplicate while pending shares the in-flight future too.
        f1 = await service.enqueue(jobs[1], request_id="pending")
        f2 = await service.enqueue(jobs[1], request_id="pending")
        assert f2 is f1
        await f1
        await service.stop()
        return first, again, service

    first, again, service = asyncio.run(run())
    assert again == first
    assert service.counters["duplicates"] == 2
    assert len(service.entries) == 2  # one ledger entry per unique request


def test_qos_class_aware_shedding(tmp_path):
    capacity, jobs = _workload(n=6)
    # Class 0 never sheds; class 1 sheds as soon as anything is queued.
    config = _config(
        capacity, queue_limit=8, shed_thresholds=(1.01, 0.01)
    )

    async def run():
        service = AdmissionService(config, tmp_path)
        # Not started: the queue holds work, occupancy is real.
        fut = await service.enqueue(jobs[0], qos=0, request_id="a")
        shed = await service.enqueue(jobs[1], qos=1, request_id="b")
        kept = await service.enqueue(jobs[2], qos=0, request_id="c")
        service.start()
        results = await asyncio.gather(fut, shed, kept)
        await service.stop()
        return results, service

    (a, b, c), service = asyncio.run(run())
    assert b.outcome is ServiceOutcome.SHED and b.decision is None
    assert a.outcome is not ServiceOutcome.SHED
    assert c.outcome is not ServiceOutcome.SHED
    assert service.counters["shed"] == 1
    assert service.counters["shed_class_1"] == 1
    # Shed requests are never logged — and may retry under the same id.
    assert all(e.request_id != "b" for e in service.entries)


def test_degraded_admission_narrows_or_paths_and_logs_effective_job(tmp_path):
    capacity, jobs = _workload(seed=13, n=10)
    jobs = [j for j in jobs if len(j.chains) > 1] or jobs
    config = _config(capacity, degrade_occupancy=0.0, degrade_keep=1)

    async def run():
        service = AdmissionService(config, tmp_path)
        answers = await _submit_all(service, jobs)
        await service.stop()
        return answers, service

    answers, service = asyncio.run(run())
    assert service.counters["degraded"] == len(jobs)
    for entry, job, answer in zip(service.entries, jobs, answers):
        assert entry.degraded and answer.degraded
        assert len(entry.job.chains) == 1
        expected, changed = degrade_job(job, 1)
        assert changed
        assert entry.job.chains == expected.chains


def test_degrade_job_keeps_cheapest_chain():
    _, jobs = _workload(seed=14, n=8)
    multi = [j for j in jobs if len(j.chains) > 1]
    for job in multi:
        narrowed, changed = degrade_job(job, 1)
        assert changed and len(narrowed.chains) == 1

        def cost(chain):
            return sum(t.processors * t.duration for t in chain.tasks)

        assert cost(narrowed.chains[0]) == min(cost(c) for c in job.chains)
    single = [j for j in jobs if len(j.chains) == 1]
    for job in single:
        assert degrade_job(job, 1) == (job, False)


def test_queue_deadline_expires_before_decision(tmp_path):
    capacity, jobs = _workload(n=3)
    config = _config(capacity)

    async def run():
        service = AdmissionService(config, tmp_path)
        # Enqueue with a tiny deadline while the drain loop is not running.
        fut = await service.enqueue(jobs[0], timeout=0.001, request_id="late")
        await asyncio.sleep(0.01)
        service.start()
        answer = await fut
        await service.stop()
        return answer, service

    answer, service = asyncio.run(run())
    assert answer.outcome is ServiceOutcome.TIMED_OUT
    assert answer.decision is None  # never reached the arbitrator
    assert service.counters["timed_out_queue"] == 1
    assert not service.entries  # and never logged


def test_late_decision_is_durable_and_flagged(tmp_path):
    capacity, jobs = _workload(n=2)
    config = _config(capacity)

    def slow_decide(arbitrator, batch):
        import time

        time.sleep(0.01)
        return arbitrator.admit_batch(list(batch))

    async def run():
        service = AdmissionService(config, tmp_path, decide=slow_decide)
        service.start()
        answer = await service.submit(jobs[0], timeout=0.002, request_id="r0")
        await service.stop()
        return answer, service

    answer, service = asyncio.run(run())
    assert answer.outcome is ServiceOutcome.TIMED_OUT and answer.late
    assert answer.decision is not None  # decided durably, just too late
    assert service.counters["late_decisions"] == 1
    assert len(service.entries) == 1
    # A retry under the same id is answered from the ledger.
    stored = service._seen["r0"]
    assert stored.outcome in (ServiceOutcome.ADMITTED, ServiceOutcome.REJECTED)


def test_retry_backoff_is_deterministic_under_seed(tmp_path):
    capacity, jobs = _workload(n=6)

    def runs(seed):
        fails = {"left": 4}

        def flaky(arbitrator, batch):
            if fails["left"] > 0:
                fails["left"] -= 1
                raise TransientWorkerError("injected")
            return arbitrator.admit_batch(list(batch))

        config = _config(capacity, seed=seed, max_attempts=8)

        async def run():
            service = AdmissionService(
                config, tmp_path / f"s{seed}-{fails['left']}", decide=flaky
            )
            await _submit_all(service, jobs)
            await service.stop()
            return service.counters

        return asyncio.run(run())

    a = runs(5)
    b = runs(5)
    c = runs(6)
    assert a["retries"] == b["retries"] == 4
    assert a["retry_backoff_total"] == b["retry_backoff_total"] > 0
    assert c["retry_backoff_total"] != a["retry_backoff_total"]  # jitter reseeded


def test_permanent_worker_failure_fail_stops(tmp_path):
    capacity, jobs = _workload(n=4)
    config = _config(capacity, max_attempts=2)

    def broken(arbitrator, batch):
        raise TransientWorkerError("permanently down")

    async def run():
        service = AdmissionService(config, tmp_path, decide=broken)
        service.start()
        with pytest.raises(ServiceUnavailableError):
            await service.submit(jobs[0], request_id="r0")
        assert not service.running
        with pytest.raises(ServiceUnavailableError):
            await service.enqueue(jobs[1], request_id="r1")
        return service

    service = asyncio.run(run())
    assert service.stats()["failed"] == 1
    assert service.counters["retries"] == 2  # both attempts failed
    # The job record hit the WAL before the failure; recovery owns it.
    assert service.counters["acked"] == 0
