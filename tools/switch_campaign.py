#!/usr/bin/env python
"""Nightly adversarial-switch campaign: back-end switching under rotation.

The adaptive controller's safety argument is that *any* switch sequence
is decision-invisible, so this campaign hammers exactly that surface:
random workloads (rigid and malleable) run under ``backend="adaptive"``
with the controller pinned to randomized forced switch schedules —
including per-query single-backend cycles and long mixed cycles — and
every digest must match every static back-end's.  The fixed schedules of
the differential fuzzer (:data:`repro.verify.fuzz._SWITCH_SCHEDULES`)
ride along, so the PR-gate surface is a strict subset of the nightly one.

A failing case is delta-debugged to a locally minimal reproducer and
persisted (same corpus format the differential fuzzer uses), so the fix
lands in ``tests/corpus/`` and replays forever.

    PYTHONPATH=src python tools/switch_campaign.py --seeds 20 --base-seed 7
"""

from __future__ import annotations

import argparse
import random
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.autotune import SWITCHABLE_BACKENDS  # noqa: E402
from repro.verify.fuzz import (  # noqa: E402
    FuzzCase,
    persist_failure,
    random_case,
    run_case,
    shrink,
    switch_failures,
)

#: Cases fuzzed per seed (each case runs every schedule x every back-end).
CASES_PER_SEED = 10
#: Randomized forced schedules tried per case, on top of the fixed set.
SCHEDULES_PER_CASE = 3


def _random_schedule(rng: random.Random) -> tuple[str, ...]:
    """A forced switch schedule: 1 (per-query pin) to 8 entries."""
    return tuple(
        rng.choice(SWITCHABLE_BACKENDS) for _ in range(rng.randint(1, 8))
    )


def _schedule_failures(
    case: FuzzCase, schedule: tuple[str, ...]
) -> list[str]:
    """Digest of one forced schedule vs every static back-end."""
    failures: list[str] = []
    switched, audit_fails = run_case(
        case, backend="adaptive", forced_switches=schedule
    )
    failures.extend(audit_fails)
    for backend in SWITCHABLE_BACKENDS:
        static, _ = run_case(case, backend=backend, audit=False)
        if switched != static:
            failures.append(
                f"forced schedule {'/'.join(schedule)} != static {backend}"
            )
    return failures


def check_seed(seed: int, reproducers: Path | None) -> list[str]:
    rng = random.Random(seed)
    failures: list[str] = []
    for _ in range(CASES_PER_SEED):
        case = random_case(rng, max_jobs=6, malleable=rng.random() < 0.5)
        schedules = [_random_schedule(rng) for _ in range(SCHEDULES_PER_CASE)]

        def case_failures(candidate: FuzzCase) -> list[str]:
            found = switch_failures(candidate)
            for schedule in schedules:
                found += _schedule_failures(candidate, schedule)
            return found

        whys = case_failures(case)
        if not whys:
            continue
        minimal = shrink(case, lambda c: bool(case_failures(c)))
        whys = case_failures(minimal) or whys
        failures += [f"seed {seed} case {minimal.case_id}: {w}" for w in whys]
        if reproducers is not None:
            path = persist_failure(minimal, whys, reproducers)
            print(f"  reproducer: {path}")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seeds", type=int, default=20)
    parser.add_argument("--base-seed", type=int, default=0)
    parser.add_argument(
        "--reproducers",
        type=Path,
        default=None,
        help="persist shrunk failing cases into DIR (corpus format)",
    )
    args = parser.parse_args()

    failures: list[str] = []
    for i in range(args.seeds):
        failures += check_seed(args.base_seed + i, args.reproducers)
    print(
        f"switch campaign: {args.seeds} seed(s) from {args.base_seed}, "
        f"{args.seeds * CASES_PER_SEED} case(s), {len(failures)} failure(s)"
    )
    for failure in failures:
        print(f"  FAIL {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
