#!/usr/bin/env python
"""Mint (or re-mint) the committed verification corpus in ``tests/corpus/``.

Sweep entries freeze quick-scale expectations for committed experiment
points; workload entries pin hand-built cases through the full fuzz check
battery.  Run from the repo root::

    PYTHONPATH=src python tools/mint_corpus.py

Re-minting is only legitimate after an *intentional* decision-affecting
change — the whole point of the corpus is that accidental changes fail
``tests/verify/test_corpus.py``.
"""

from __future__ import annotations

import json
import sys
from dataclasses import replace
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.resources import ProcessorTimeRequest  # noqa: E402
from repro.model.chain import TaskChain  # noqa: E402
from repro.model.job import Job  # noqa: E402
from repro.model.task import TaskSpec  # noqa: E402
from repro.resilience.events import FaultModel  # noqa: E402
from repro.resilience.reconfig import ResizePolicy  # noqa: E402
from repro.runner.key import sweep_config_to_dict  # noqa: E402
from repro.sim.persistence import metrics_to_dict  # noqa: E402
from repro.verify.checks import audited_point  # noqa: E402
from repro.verify.fuzz import FuzzCase, check_case  # noqa: E402
from repro.workloads.sweep import SweepConfig  # noqa: E402

CORPUS = Path(__file__).resolve().parent.parent / "tests" / "corpus"

#: Metrics frozen into sweep expectations.  Response/slack stats ride along
#: implicitly via utilization/horizon; counts and quality pin decisions.
_EXPECT_KEYS = (
    "offered",
    "admitted",
    "rejected",
    "utilization",
    "achieved_quality",
    "horizon",
    "chain_usage",
)


def _write(name: str, payload: dict) -> None:
    path = CORPUS / name
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path.relative_to(CORPUS.parent.parent)}")


def mint_sweep(
    name: str,
    note: str,
    config: SweepConfig,
    system: str,
    extra_expect: tuple[str, ...] = (),
) -> None:
    metrics, report = audited_point(config, system)
    if not report.ok:
        raise SystemExit(f"{name}: refusing to mint a dirty point:\n{report.summary()}")
    full = metrics_to_dict(metrics)
    _write(
        name,
        {
            "version": 1,
            "kind": "sweep",
            "note": note,
            "config": sweep_config_to_dict(config),
            "system": system,
            "expect": {k: full[k] for k in _EXPECT_KEYS + extra_expect},
        },
    )


def mint_workload(name: str, note: str, case: FuzzCase) -> None:
    failures = check_case(case)
    if failures:
        raise SystemExit(f"{name}: case is not clean: {failures}")
    payload = case.to_dict()
    payload["note"] = note
    _write(name, payload)


def main() -> None:
    CORPUS.mkdir(parents=True, exist_ok=True)
    base = SweepConfig()  # quick scale: n_jobs=2000, P=16, interval=30

    mint_sweep(
        "sweep-fig5a-interval30-tunable.json",
        "Figure 5(a) default point (interval 30): tunable at quick scale",
        base,
        "tunable",
    )
    mint_sweep(
        "sweep-fig5a-interval30-shape1.json",
        "Figure 5(a) default point (interval 30): shape1 baseline",
        base,
        "shape1",
    )
    p32 = replace(base, processors=32)
    mint_sweep(
        "sweep-fig5c-p32-tunable.json",
        "Figure 5(c) P=32 — the documented P=24-36 deviation band "
        "(tunable legitimately trails shape1 here; see EXPERIMENTS.md)",
        p32,
        "tunable",
    )
    mint_sweep(
        "sweep-fig5c-p32-shape1.json",
        "Figure 5(c) P=32 — shape1's edge over tunable is frozen so a "
        "silent change in either direction fails the replay",
        p32,
        "shape1",
    )
    alpha1 = replace(base, params=base.params.with_alpha(1.0))
    mint_sweep(
        "sweep-fig5d-alpha1-tunable.json",
        "Figure 5(d) alpha=1.0 coincidence point: all three systems "
        "must make identical decisions",
        alpha1,
        "tunable",
    )
    mint_sweep(
        "sweep-fig5d-alpha1-shape1.json",
        "Figure 5(d) alpha=1.0 coincidence point, shape1 half of the pair",
        alpha1,
        "shape1",
    )
    mint_sweep(
        "sweep-fig6b-interval30-malleable-tunable.json",
        "Figure 6(b) malleable model at the interval-30 point",
        replace(base, malleable=True),
        "tunable",
    )
    mint_sweep(
        "sweep-resilience-faults-tunable.json",
        "Perturbed run (faults + overruns + bursts) through the "
        "renegotiation driver, relaxed-audited",
        replace(
            base,
            n_jobs=300,
            faults=FaultModel(
                fault_rate=0.002, overrun_prob=0.1, burst_rate=0.001
            ),
        ),
        "tunable",
    )

    # Mid-execution malleability: one entry per resize direction, pinning
    # the full resilience block (resize ledger included) so a silent change
    # in grow/shrink decisions fails the replay.  Both use the committed
    # reconfig-experiment regime (severity 0.6 of P=32, repair 100,
    # interval 35 — see repro.experiments.reconfig).
    reconfig_model = FaultModel(
        fault_severity=0.6,
        mean_repair=100.0,
        overrun_prob=0.10,
        burst_rate=5e-5,
        burst_size=4,
    )
    reconfig_base = replace(
        base, processors=32, interval=35.0, n_jobs=300, malleable=True
    )
    mint_sweep(
        "sweep-reconfig-grow-on-repair.json",
        "grow-on-repair: capacity repairs re-widen running jobs that were "
        "re-planned narrow during the degraded epoch (GROW policy only)",
        replace(
            reconfig_base,
            faults=reconfig_model.with_fault_rate(2e-3),
            resize_policy=ResizePolicy.GROW,
        ),
        "tunable",
        extra_expect=("resilience",),
    )
    mint_sweep(
        "sweep-reconfig-shrink-to-admit.json",
        "shrink-to-admit: a rejected arrival is rescued by narrowing a "
        "running donor job's in-flight task (SHRINK policy only)",
        replace(
            reconfig_base,
            faults=reconfig_model.with_fault_rate(3e-4),
            resize_policy=ResizePolicy.SHRINK,
        ),
        "tunable",
        extra_expect=("resilience",),
    )

    # Hand-minted workloads ------------------------------------------------
    def task(name, procs, dur, deadline, q=1.0, mc=None):
        return TaskSpec(
            name,
            ProcessorTimeRequest(procs, dur),
            deadline=deadline,
            quality=q,
            max_concurrency=mc if mc is not None else procs,
        )

    # Twin jobs with an internally duplicated chain: the duplicate-collapse
    # prune and the identical-swap metamorphic relation both bite here.
    twin_chain_a = TaskChain(
        (task("w0", 2, 4.0, 30.0), task("w1", 1, 2.0, 30.0)), label="a"
    )
    twin_chain_dup = TaskChain(twin_chain_a.tasks, label="a-dup")
    twin = Job(chains=(twin_chain_a, twin_chain_dup), release=0.0)
    twin2 = Job(chains=twin.chains, release=0.0)
    third = Job(
        chains=(TaskChain((task("x0", 3, 5.0, 12.0),), label="b"),),
        release=2.0,
    )
    mint_workload(
        "workload-dup-collapse-twins.json",
        "identical twin jobs + duplicated chain config: duplicate-collapse "
        "prune and equal-arrival swap must both be decision-invisible",
        FuzzCase(capacity=4, jobs=(twin, twin2, third)),
    )

    # Malleable reshape pressure: wide requests on a narrow machine force
    # work-conserving narrowing near max_concurrency bounds.
    m1 = Job(
        chains=(
            TaskChain((task("m0", 4, 3.0, 40.0, mc=8),), label="wide"),
            TaskChain(
                (task("m1", 1, 8.0, 40.0, q=0.5, mc=2),), label="narrow"
            ),
        ),
        release=0.0,
    )
    m2 = Job(chains=m1.chains, release=1.0)
    m3 = Job(
        chains=(TaskChain((task("m2", 2, 6.0, 10.0, mc=4),), label="c"),),
        release=1.0,
    )
    mint_workload(
        "workload-malleable-reshape.json",
        "malleable reshape near max_concurrency bounds on a 4p machine",
        FuzzCase(capacity=4, jobs=(m1, m2, m3), malleable=True),
    )

    # A tight rigid instance small enough for the oracle: greedy's gap to
    # clairvoyance is bounded here on every replay.
    o1 = Job(
        chains=(
            TaskChain((task("o0", 2, 4.0, 5.0), task("o1", 2, 2.0, 8.0)), label="p0"),
            TaskChain((task("o2", 4, 2.0, 7.0),), label="p1"),
        ),
        release=0.0,
    )
    o2 = Job(chains=(TaskChain((task("o3", 3, 3.0, 6.0),), label="q0"),), release=0.0)
    o3 = Job(chains=(TaskChain((task("o4", 2, 3.0, 4.0),), label="r0"),), release=2.0)
    mint_workload(
        "workload-oracle-tight.json",
        "small tight OR-graph instance: oracle bound + full matrix on replay",
        FuzzCase(capacity=4, jobs=(o1, o2, o3)),
    )


if __name__ == "__main__":
    main()
