#!/usr/bin/env python
"""Nightly malleable-resize campaign: verified grow/shrink under rotation.

Runs the committed reconfig fault regime across many seeds with full
per-event verification (the simulator audits every resize against the
strict invariants as it happens) and cross-checks the resize ledger's
internal consistency plus the disabled-engine identity on each seed.
A PR gate affords one seed (see bench-smoke's resize-sweep step); the
nightly sweep rotates the base seed so the fuzzed surface keeps moving.

    PYTHONPATH=src python tools/resize_campaign.py --seeds 20 --base-seed 7
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.resilience.events import FaultModel  # noqa: E402
from repro.resilience.reconfig import ResizePolicy  # noqa: E402
from repro.workloads.sweep import SweepConfig, run_point  # noqa: E402


def campaign_config(seed: int) -> SweepConfig:
    return SweepConfig(
        n_jobs=300,
        processors=32,
        interval=35.0,
        seed=seed,
        malleable=True,
        resize_policy=ResizePolicy.GROW_SHRINK,
        faults=FaultModel(
            fault_rate=1e-3,
            fault_severity=0.6,
            mean_repair=100.0,
            overrun_prob=0.10,
            burst_rate=5e-5,
            burst_size=4,
        ),
    )


def check_seed(seed: int) -> list[str]:
    failures: list[str] = []
    config = campaign_config(seed)
    on = run_point(config, "tunable")  # verify=True: audits every resize
    r = on.resilience
    if r["resizes"] != r["grows"] + r["shrinks"]:
        failures.append(f"seed {seed}: resize count mismatch: {r}")
    if r["grows"] > r["grow_attempts"]:
        failures.append(f"seed {seed}: more grows than attempts: {r}")
    if r["shrinks"] > r["shrink_attempts"]:
        failures.append(f"seed {seed}: more shrinks than attempts: {r}")
    if r["shrink_admits"] + r["shrink_rescues"] != r["shrinks"]:
        failures.append(f"seed {seed}: shrink outcomes don't sum: {r}")
    if r["resizes"] and r["resize_wasted"] < 0.0:
        failures.append(f"seed {seed}: negative resize waste: {r}")
    off = run_point(
        replace(config, resize_policy=ResizePolicy.OFF), "tunable"
    )
    if off.resilience["resizes"] != 0 or off.resilience["resize_cost"] != 0.0:
        failures.append(
            f"seed {seed}: disabled engine resized: {off.resilience}"
        )
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seeds", type=int, default=20)
    parser.add_argument("--base-seed", type=int, default=0)
    args = parser.parse_args()

    failures: list[str] = []
    for i in range(args.seeds):
        failures += check_seed(args.base_seed + i)
    print(
        f"resize campaign: {args.seeds} seed(s) from {args.base_seed}, "
        f"{len(failures)} failure(s)"
    )
    for failure in failures:
        print(f"  FAIL {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
