"""Micro-benchmarks for the availability-profile hot path.

The Section 5.2 heuristic's per-reservation cost is the whole system's
throughput ceiling at 10,000-arrival scale, so this module pins it down:

* :class:`LegacyAvailabilityProfile` re-implements the pre-optimization
  mutation path (per-breakpoint ``list.insert``/``del`` splices via
  ``_split_at`` + ``_canonicalize``, separate min/max validation scans, and
  a from-scratch ``free_area`` segment walk).  It is kept *permanently* as
  the "before" baseline so ``BENCH_sched.json`` always carries a
  before/after pair and future regressions are visible as a shrinking
  speedup ratio.
* :func:`run_reserve_fit_bench` drives either implementation through an
  identical deterministic ``earliest_fit`` + ``reserve`` workload (the
  greedy scheduler's inner loop) on a profile whose segment count grows
  with every placement — no compaction, which is the worst case the
  arbitrator faces between arrivals.
* :func:`run_area_query_bench` times ``free_area`` (the §5.2 tie-break's
  window-utilization probe) on a heavily fragmented profile.

Usable three ways: imported by ``benchmarks/run_bench.py`` (which writes
``BENCH_sched.json``), run standalone (``python benchmarks/bench_profile_ops.py``),
or exercised at tiny scale by the test suite.
"""

from __future__ import annotations

import json
import math
import random
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # standalone invocation without PYTHONPATH=src
    sys.path.insert(0, str(_SRC))

from repro.core.first_fit import earliest_fit
from repro.core.profile import AvailabilityProfile
from repro.core.resources import TIME_EPS
from repro.errors import CapacityExceededError, SchedulingError

__all__ = [
    "LegacyAvailabilityProfile",
    "run_reserve_fit_bench",
    "run_area_query_bench",
]


class LegacyAvailabilityProfile(AvailabilityProfile):
    """The seed implementation of the mutation path, kept as a baseline.

    Reproduces the original behaviour exactly: ``_shift`` validates with
    separate min/max scans, forces breakpoints in with two ``list.insert``
    splices, adds the delta segment-by-segment, then runs a canonicalize
    pass that deletes merged breakpoints one ``del`` at a time;
    ``free_area`` walks segments from scratch on every call; and
    ``earliest_fit`` probes take the per-segment scalar walk
    (``VECTORIZED_SCAN = False`` opts out of the NumPy mirror scan).
    """

    __slots__ = ()

    VECTORIZED_SCAN = False

    def _split_at(self, t: float) -> int:
        i = self._index_at(t)
        if abs(self._times[i] - t) <= TIME_EPS:
            return i
        if i + 1 < len(self._times) and abs(self._times[i + 1] - t) <= TIME_EPS:
            return i + 1
        self._times.insert(i + 1, t)
        self._avail.insert(i + 1, self._avail[i])
        return i + 1

    def _canonicalize(self, lo: int, hi: int) -> None:
        start = max(lo - 1, 0)
        end = min(hi + 1, len(self._avail) - 1)
        i = max(start, 1)
        while i <= end and i < len(self._avail):
            if self._avail[i] == self._avail[i - 1]:
                del self._avail[i]
                del self._times[i]
                end -= 1
            else:
                i += 1

    def _max_available(self, t0: float, t1: float) -> int:
        i = self._index_at(t0)
        hi = self._avail[i]
        n = len(self._times)
        i += 1
        while i < n and self._times[i] < t1 - TIME_EPS:
            if self._avail[i] > hi:
                hi = self._avail[i]
            i += 1
        return hi

    def _shift(self, t0: float, t1: float, delta: int) -> None:
        if math.isnan(t0) or math.isnan(t1):
            raise SchedulingError("reservation times must not be NaN")
        if t1 <= t0 + TIME_EPS:
            raise SchedulingError(
                f"reservation interval [{t0}, {t1}) is empty or inverted"
            )
        if math.isinf(t1):
            raise SchedulingError("reservations must have a finite end time")
        if delta < 0 and self.min_available(t0, t1) < -delta:
            raise CapacityExceededError(
                f"reserving {-delta} processors over [{t0}, {t1}) would "
                f"exceed capacity"
            )
        if delta > 0 and self._max_available(t0, t1) + delta > self._capacity:
            raise CapacityExceededError(
                f"releasing {delta} processors over [{t0}, {t1}) would "
                f"exceed capacity {self._capacity}"
            )
        i0 = self._split_at(t0)
        i1 = self._split_at(t1)
        for i in range(i0, i1):
            self._avail[i] += delta
        self._canonicalize(i0, i1)
        self._prefix = None
        self._np_avail = None  # seed had no mirrors; never leave stale ones
        self._np_times = None
        stats = self.stats
        stats.shift_ops += 1
        touched = max(i1 - i0, 1)
        stats.segments_touched += touched
        stats.last_touched = touched

    def free_area(self, t0: float, t1: float) -> float:
        if t1 <= t0:
            return 0.0
        if math.isinf(t1):
            raise SchedulingError("free_area requires a finite upper bound")
        total = 0.0
        i = self._index_at(t0)
        n = len(self._times)
        cur = t0
        while cur < t1 - TIME_EPS:
            seg_end = self._times[i + 1] if i + 1 < n else math.inf
            upper = min(seg_end, t1)
            total += self._avail[i] * (upper - cur)
            cur = upper
            i += 1
        return total


def _placement_stream(n: int, capacity: int, horizon: float, seed: int):
    """Deterministic (release, duration, processors) request stream.

    Releases are uniform over ``[0, horizon]`` so reservations land all
    over the profile (mid-list splices, heavy fragmentation), not just at
    the frontier.
    """
    rng = random.Random(seed)
    for _ in range(n):
        yield (
            rng.uniform(0.0, horizon),
            rng.uniform(0.5, 20.0),
            rng.randint(1, max(1, capacity // 4)),
        )


def run_reserve_fit_bench(
    profile_cls: type[AvailabilityProfile] = AvailabilityProfile,
    n_placements: int = 10_000,
    capacity: int = 64,
    seed: int = 7,
) -> dict[str, float | int]:
    """Time the greedy inner loop: ``earliest_fit`` + ``reserve`` per job.

    Runs ``n_placements`` placements on one ever-growing profile (no
    compaction) and reports wall time, ops/sec and the final segment count.
    The request stream, and therefore the resulting profile, is identical
    for every ``profile_cls`` — the assertion at the end guards that the
    baseline and the optimized implementation computed the same schedule.
    """
    profile = profile_cls(capacity)
    horizon = n_placements * 0.4  # keeps ~linear segment growth and contention
    requests = list(_placement_stream(n_placements, capacity, horizon, seed))
    placed = 0
    t_start = time.perf_counter()
    for release, duration, processors in requests:
        start = earliest_fit(profile, processors, duration, release)
        if start is None:
            continue
        profile.reserve(start, start + duration, processors)
        placed += 1
    elapsed = time.perf_counter() - t_start
    profile.check_invariants()
    return {
        "implementation": profile_cls.__name__,
        "placements": placed,
        "seconds": elapsed,
        "ops_per_sec": placed / elapsed if elapsed > 0 else float("inf"),
        "final_segments": len(profile),
        "checksum": round(sum(profile._avail), 6),  # noqa: SLF001 - identity guard
    }


def run_area_query_bench(
    profile_cls: type[AvailabilityProfile] = AvailabilityProfile,
    n_queries: int = 10_000,
    n_reservations: int = 2_000,
    capacity: int = 64,
    seed: int = 11,
) -> dict[str, float | int]:
    """Time ``free_area`` window probes on a fragmented, *static* profile.

    This is the tie-break rule's access pattern: many area queries between
    mutations.  The optimized profile answers from cached prefix sums
    (O(log S)); the legacy baseline re-walks segments every call.
    """
    profile = profile_cls(capacity)
    horizon = n_reservations * 0.4
    for release, duration, processors in _placement_stream(
        n_reservations, capacity, horizon, seed
    ):
        start = earliest_fit(profile, processors, duration, release)
        if start is not None:
            profile.reserve(start, start + duration, processors)
    rng = random.Random(seed + 1)
    windows = [
        (t0, t0 + rng.uniform(1.0, horizon / 4))
        for t0 in (rng.uniform(0.0, horizon) for _ in range(n_queries))
    ]
    acc = 0.0
    t_start = time.perf_counter()
    for t0, t1 in windows:
        acc += profile.free_area(t0, t1)
    elapsed = time.perf_counter() - t_start
    return {
        "implementation": profile_cls.__name__,
        "queries": n_queries,
        "seconds": elapsed,
        "ops_per_sec": n_queries / elapsed if elapsed > 0 else float("inf"),
        "segments": len(profile),
        "checksum": round(acc, 3),
    }


def main() -> None:
    """Standalone entry: print both micro-benchmarks for both implementations."""
    out = {
        "reserve_fit": {
            "before": run_reserve_fit_bench(LegacyAvailabilityProfile),
            "after": run_reserve_fit_bench(AvailabilityProfile),
        },
        "area_query": {
            "before": run_area_query_bench(LegacyAvailabilityProfile),
            "after": run_area_query_bench(AvailabilityProfile),
        },
    }
    for name, pair in out.items():
        speedup = pair["after"]["ops_per_sec"] / pair["before"]["ops_per_sec"]
        pair["speedup"] = round(speedup, 3)
    print(json.dumps(out, indent=2))


if __name__ == "__main__":  # pragma: no cover - manual entry point
    main()
