"""Calypso runtime benches: step execution overhead and fault-masking cost.

Wall-clock numbers here measure the *runtime machinery* (snapshotting,
commit, eager scheduling bookkeeping) — not parallel speedup, which the GIL
forbids measuring meaningfully in CPython (see DESIGN.md).
"""

import pytest

from repro.calypso.faults import FaultInjector
from repro.calypso.routine import Routine
from repro.calypso.runtime import CalypsoRuntime
from repro.calypso.shared import SharedMemory
from repro.calypso.step import ParallelStep
from repro.sim.rng import RandomStreams

N_TASKS = 16
CHUNK = 500


def make_memory():
    data = list(range(N_TASKS * CHUNK))
    return SharedMemory(data=data, **{f"p{i}": 0 for i in range(N_TASKS)})


def body(view, width, number):
    data = view["data"]
    lo = number * len(data) // width
    hi = (number + 1) * len(data) // width
    view[f"p{number}"] = sum(data[lo:hi])


STEP = ParallelStep((Routine(body, copies=N_TASKS, name="sum"),), name="bench")
EXPECTED = sum(range(N_TASKS * CHUNK))


def _verify(memory):
    assert sum(memory[f"p{i}"] for i in range(N_TASKS)) == EXPECTED


@pytest.mark.parametrize("workers", [1, 4])
def test_step_execution(benchmark, workers):
    runtime = CalypsoRuntime(workers=workers)

    def run():
        memory = make_memory()
        runtime.execute_step(STEP, memory)
        return memory

    _verify(benchmark(run))


def test_fault_masking_overhead(benchmark):
    def run():
        injector = FaultInjector(0.3, RandomStreams(1), max_faults_per_task=4)
        runtime = CalypsoRuntime(workers=4, fault_injector=injector)
        memory = make_memory()
        report = runtime.execute_step(STEP, memory)
        return memory, report

    memory, report = benchmark(run)
    _verify(memory)
    assert report.executions >= report.tasks
