"""Figure 5(d): sensitivity to the job shape alpha.

Asserts: clear benefit for small alpha, negligible effect from alpha ~0.625
upward (where the two task shapes converge), exact equality at alpha = 1.
"""

from benchmarks.conftest import bench_jobs
from repro.experiments.fig5 import render_fig5
from repro.workloads import SweepConfig, presets
from repro.workloads.sweep import run_sweep

ALPHAS = (0.0625, 0.125, 0.25, 0.5, 0.625, 0.75, 1.0)


def run():
    cfg = SweepConfig(n_jobs=bench_jobs(), seed=presets.DEFAULT_SEED)
    return run_sweep("alpha", ALPHAS, cfg)


def test_fig5d(benchmark, save_report):
    sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("fig5d", render_fig5(sweep, "d"))

    tun = sweep.series("tunable", "throughput")
    s1 = sweep.series("shape1", "throughput")
    s2 = sweep.series("shape2", "throughput")
    n = max(tun)

    # Benefit present for small alpha.
    for i, alpha in enumerate(ALPHAS):
        if alpha <= 0.5:
            assert tun[i] > max(s1[i], s2[i]), f"no benefit at alpha={alpha}"

    # Negligible effect at and above the ~0.625 pivot.
    for i, alpha in enumerate(ALPHAS):
        if alpha >= 0.625:
            assert abs(tun[i] - s1[i]) <= 0.02 * n

    # Identical task systems at alpha = 1.
    assert tun[-1] == s1[-1] == s2[-1]
