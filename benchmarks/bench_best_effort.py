"""Extension bench: reservation-based admission vs best-effort EDF.

Regenerates the comparison table and asserts the introduction's argument:
under overload, predictable (admission + reservation) management completes
at least as many jobs on time as best-effort EDF while never spending
processor-time on jobs that will miss their deadlines.
"""

from benchmarks.conftest import bench_jobs
from repro.experiments.best_effort import (
    render_best_effort,
    run_best_effort_comparison,
)

INTERVALS = (10.0, 20.0, 30.0, 45.0, 60.0, 85.0)


def run():
    return run_best_effort_comparison(intervals=INTERVALS, n_jobs=bench_jobs())


def test_best_effort(benchmark, save_report):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("best_effort", render_best_effort(rows))

    overloaded = [r for r in rows if r.interval <= 30.0]
    assert overloaded, "axis must include overloaded points"
    for row in overloaded:
        assert row.reservation_on_time >= row.edf_on_time, (
            f"best-effort EDF out-performed reservations at interval "
            f"{row.interval}"
        )
        # EDF burns work on jobs it later drops; reservations never do.
        assert row.edf_wasted_area > 0
        assert row.edf_goodput_utilization < row.edf_utilization

    # Under light load the two converge (EDF admits everything too).
    lightest = rows[-1]
    assert lightest.edf_on_time >= 0.85 * lightest.offered or (
        lightest.reservation_on_time >= lightest.edf_on_time
    )
