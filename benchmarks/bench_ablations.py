"""Ablation benches for the design choices DESIGN.md calls out.

* tie-break policy (the Section 5.2 rule vs alternatives);
* the two readings of the malleable width rule;
* first fit vs best fit;
* negotiated vs conservative admission;
* Poisson vs bursty arrival robustness of the headline result.
"""

from dataclasses import replace

from benchmarks.conftest import bench_jobs
from repro.core.arbitrator import QoSArbitrator
from repro.core.baselines import ConservativeArbitrator
from repro.core.malleable import MalleableStrategy
from repro.core.policies import TieBreakPolicy
from repro.experiments import ablations
from repro.sim.arrivals import BurstyArrivals, PoissonArrivals
from repro.sim.rng import RandomStreams
from repro.sim.simulator import simulate_arrivals
from repro.workloads import SweepConfig, presets
from repro.workloads.sweep import run_point


def _cfg(**kw):
    return SweepConfig(n_jobs=bench_jobs(), seed=presets.DEFAULT_SEED, **kw)


def test_ablation_policy(benchmark, save_report):
    def run():
        return {
            policy: run_point(_cfg(policy=policy), "tunable")
            for policy in TieBreakPolicy
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("ablation_policy", ablations.ablation_policy(bench_jobs()))
    paper = results[TieBreakPolicy.PAPER]
    # The paper's tie-break never hurts throughput vs the naive FIRST rule.
    assert paper.throughput >= results[TieBreakPolicy.FIRST].throughput - 0.01 * paper.offered


def test_ablation_malleable_strategy(benchmark, save_report):
    def run():
        return {
            strategy: run_point(
                _cfg(malleable=True, strategy=strategy), "tunable"
            )
            for strategy in MalleableStrategy
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report(
        "ablation_malleable", ablations.ablation_malleable_strategy(bench_jobs())
    )
    for metrics in results.values():
        assert metrics.offered == bench_jobs()


def test_ablation_fit_rule(benchmark, save_report):
    report = benchmark.pedantic(
        lambda: ablations.ablation_fit_rule(300), rounds=1, iterations=1
    )
    save_report("ablation_fit", report)
    assert "first-fit" in report and "best-fit" in report


def test_ablation_conservative(benchmark, save_report):
    cfg = _cfg()

    def run():
        out = {}
        for label, cls in (("negotiated", QoSArbitrator), ("conservative", ConservativeArbitrator)):
            arb = cls(cfg.processors, keep_placements=False)
            out[label] = simulate_arrivals(
                arb,
                lambda i, release: cfg.params.tunable_job(release),
                PoissonArrivals(cfg.interval, RandomStreams(cfg.seed)),
                cfg.n_jobs,
            )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("ablation_conservative", ablations.ablation_conservative(bench_jobs()))
    # Trusting the negotiated path strictly beats requiring every path.
    assert results["negotiated"].throughput > results["conservative"].throughput


def test_ablation_bursty(benchmark, save_report):
    cfg = _cfg()

    def run():
        out = {}
        for label, factory in (
            ("poisson", lambda s: PoissonArrivals(cfg.interval, s)),
            (
                "bursty",
                lambda s: BurstyArrivals(
                    cfg.interval / 3, cfg.interval * 5 / 3, s
                ),
            ),
        ):
            row = {}
            for system in ("tunable", "shape1", "shape2"):
                arb = QoSArbitrator(cfg.processors, keep_placements=False)
                job_factory = (
                    (lambda i, r: cfg.params.tunable_job(r))
                    if system == "tunable"
                    else (lambda i, r, s=int(system[-1]): cfg.params.rigid_job(s, r))
                )
                row[system] = simulate_arrivals(
                    arb, job_factory, factory(RandomStreams(cfg.seed)), cfg.n_jobs
                )
            out[label] = row
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("ablation_bursty", ablations.ablation_bursty(bench_jobs()))
    # The headline result survives bursty arrivals.
    for label in ("poisson", "bursty"):
        row = results[label]
        assert row["tunable"].throughput >= max(
            row["shape1"].throughput, row["shape2"].throughput
        )
