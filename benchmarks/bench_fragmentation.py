"""Fragmentation-scaling benchmark: decision latency vs segment count.

The admission hot path is the per-task ``earliest_fit`` scan, and its cost
grows with schedule *fragmentation* (live profile segments), not with job
count.  This benchmark makes that axis explicit: it builds a congested
profile with a controlled segment count — a backlog region of unit-width
segments whose availability cycles through small values, followed by a
fully-free frontier — and times complete admission decisions
(:meth:`GreedyScheduler.choose`) for every scan back-end — including
the ``"kernel"`` back-end of :mod:`repro.core.kernels`, compiled or
pure-Python depending on ``REPRO_KERNEL`` — at each fragmentation level.

The workload is the tree back-end's target regime: probes need far more
processors than any backlog segment offers, so the scalar walk crosses the
whole backlog (O(S) per probe) while the segment-tree descent skips it
wholesale (O(log S)).  It is deliberately *query-dominated* — decisions
probe, they do not commit — matching the regime where ``backend="tree"``
is the right explicit choice (see ``docs/perf.md``).

Three guards make the report trustworthy:

* every decision (admit/reject, chosen chain, every placement start/width)
  is checksummed and must be identical across all three back-ends *and*
  across ``prune=True``/``prune=False``;
* a commit pass re-runs the job stream with commits applied and checksums
  the admit sequence, chosen chains, utilization and the final profile
  breakpoints across back-ends, then audits each profile's invariants
  (which for the tree back-end replays the whole index against the
  profile);
* at 10k segments the tree must beat the scalar walk by at least 5x on
  decision p50 — the headline claim of the report — or the benchmark
  raises instead of writing numbers;
* the self-tuning ``"adaptive"`` back-end rides the same matrix (same
  checksums) and must land within :data:`ADAPTIVE_TOLERANCE` of the best
  static back-end's p50 at every point — the controller has a full
  warmup pass of counter signal to settle on the regime's winner.

The job mix also exercises the candidate prunes (duplicate configurations,
pointwise-dominated doomed configurations), so the report carries probed
vs pruned counters alongside the latency percentiles.
"""

from __future__ import annotations

import hashlib
import math
import time

from repro.core.greedy import GreedyScheduler
from repro.core.resources import ProcessorTimeRequest
from repro.core.schedule import Schedule
from repro.model.chain import TaskChain
from repro.model.job import Job
from repro.model.task import TaskSpec

__all__ = ["build_fragmented_schedule", "fragmentation_jobs", "run_fragmentation_bench"]

CAPACITY = 64
#: Availability cycle of the backlog region: every value is far below the
#: probe widths, so no probe can place before the frontier.
_BACKLOG_AVAIL = (1, 3, 6, 2, 5, 4)


def build_fragmented_schedule(n_segments: int, backend: str) -> Schedule:
    """A schedule whose profile has ``n_segments`` unit-width backlog segments.

    Segment ``i`` covers ``[i, i+1)`` with availability cycling through
    ``_BACKLOG_AVAIL``; everything from ``t = n_segments`` on (the
    *frontier*) is fully free.  Adjacent availabilities always differ, so
    canonicalization keeps every breakpoint and ``len(profile)`` lands on
    ``n_segments + 1`` exactly.
    """
    schedule = Schedule(CAPACITY, keep_placements=False, backend=backend)
    profile = schedule.profile
    for i in range(n_segments):
        profile.reserve(float(i), float(i + 1), CAPACITY - _BACKLOG_AVAIL[i % 6])
    return schedule


def _task(name: str, procs: int, dur: float, deadline: float, q: float = 1.0) -> TaskSpec:
    return TaskSpec(name, ProcessorTimeRequest(procs, dur), deadline=deadline, quality=q)


def fragmentation_jobs(n_jobs: int, n_segments: int) -> list[Job]:
    """Deterministic probe jobs against a ``n_segments``-deep backlog.

    All release at 0 with deadlines generous enough to place at the
    frontier, cycling through three types:

    * plain two-path tunable jobs (both paths feasible, distinct shapes);
    * duplicate-path jobs (both paths identical — duplicate collapse);
    * doomed-then-fallback jobs: two configurations whose deadlines end
      inside the backlog (unplaceable, the second pointwise harder than
      the first — failure propagation) plus a feasible fallback.
    """
    horizon = float(n_segments)
    jobs: list[Job] = []
    for i in range(n_jobs):
        kind = i % 4
        w1 = 16 + 8 * (i % 3)  # 16, 24, 32 — all above every backlog segment
        d1 = 3.0 + (i % 4)
        c1 = TaskChain(
            (
                _task("a", w1, d1, horizon + 100.0),
                _task("b", w1 // 2, d1 / 2, horizon + 200.0),
            ),
            label="c1",
        )
        if kind <= 1:
            c2 = TaskChain(
                (
                    _task("a", 48, 2.0, horizon + 100.0, q=0.8),
                    _task("b", 12, d1, horizon + 200.0, q=0.8),
                ),
                label="c2",
            )
            jobs.append(Job((c1, c2), job_id=i))
        elif kind == 2:
            dup = TaskChain(tuple(c1.tasks), label="dup")
            jobs.append(Job((c1, dup), job_id=i))
        else:
            # Deadlines end mid-backlog: no sufficient run exists before
            # them, so both configurations force a full backlog scan when
            # probed — the second is pointwise harder and prunable.
            doomed1 = TaskChain((_task("a", w1, d1, horizon * 0.5),), label="doomed1")
            doomed2 = TaskChain(
                (_task("a", w1 + 8, d1 + 1.0, horizon * 0.4),), label="doomed2"
            )
            jobs.append(Job((doomed1, doomed2, c1), job_id=i))
    return jobs


def _decision_key(cp) -> tuple | None:
    if cp is None:
        return None
    return (
        cp.chain_index,
        tuple((pl.start, pl.end, pl.processors) for pl in cp.placements),
    )


def _checksum(payload: object) -> str:
    return hashlib.sha256(repr(payload).encode("utf-8")).hexdigest()


def _timed_decisions(
    n_segments: int, jobs: list[Job], backend: str, prune: bool
) -> tuple[dict, str]:
    """Per-decision latency percentiles + decision checksum for one config."""
    schedule = build_fragmented_schedule(n_segments, backend)
    scheduler = GreedyScheduler(schedule, prune=prune)
    for job in jobs:  # warmup: builds mirrors / prefix / tree once
        scheduler.choose(job)
    samples: list[float] = []
    decisions: list[tuple | None] = []
    for job in jobs:
        t0 = time.perf_counter()
        cp = scheduler.choose(job)
        samples.append(time.perf_counter() - t0)
        decisions.append(_decision_key(cp))
    samples.sort()
    perf = schedule.perf.snapshot()
    report = {
        "p50_us": round(samples[len(samples) // 2] * 1e6, 3),
        "p95_us": round(samples[int(len(samples) * 0.95)] * 1e6, 3),
        "seconds": round(sum(samples), 6),
        "chains_probed": perf.get("chains_probed", 0),
        "chains_pruned_dominated": perf.get("chains_pruned_dominated", 0),
        "probe_segments": schedule.profile.stats.probe_segments,
    }
    return report, _checksum(decisions)


def _commit_pass(n_segments: int, jobs: list[Job], backend: str) -> str:
    """Commit the whole stream; checksum decisions + utilization + profile."""
    schedule = build_fragmented_schedule(n_segments, backend)
    scheduler = GreedyScheduler(schedule, prune=True)
    outcome: list[tuple | None] = []
    for job in jobs:
        outcome.append(_decision_key(scheduler.schedule_job(job)))
    schedule.profile.check_invariants()
    profile = schedule.profile
    payload = (
        outcome,
        schedule.committed_area,
        schedule.utilization(),
        tuple(profile._times),  # noqa: SLF001 - equivalence guard
        tuple(profile._avail),  # noqa: SLF001
    )
    return _checksum(payload)


#: Factor by which adaptive p50/p95 may trail the best static back-end at
#: a committed fragmentation point (the self-tuning deliverable's "never
#: worse than the best static choice by more than a small tolerance").
ADAPTIVE_TOLERANCE = 1.10


def run_fragmentation_bench(
    n_probes: int,
    segment_counts: tuple[int, ...] = (100, 1_000, 10_000),
) -> dict:
    """Latency-vs-fragmentation comparison across the scan back-ends.

    Raises if any back-end or prune mode disagrees on any decision, if
    the tree fails its 5x headline over the scalar walk at >= 10k
    segments, or if the ``adaptive`` back-end trails the best static
    back-end by more than :data:`ADAPTIVE_TOLERANCE` on p50 at any point.
    The adaptive gate compares best-of-paired-re-measures on both sides:
    warm-process p50s drift by 20%+ between identical runs, so each
    side's minimum over up to three back-to-back samples stands in for
    its true floor (wall-clock drift, not regime misclassification, is
    the common flake).
    """
    points = []
    for n_segments in segment_counts:
        jobs = fragmentation_jobs(n_probes, n_segments)
        backends: dict[str, dict] = {}
        checksums: dict[str, str] = {}
        for backend in ("scalar", "vector", "tree", "kernel", "adaptive"):
            report, checksum = _timed_decisions(n_segments, jobs, backend, prune=True)
            backends[backend] = report
            checksums[backend] = checksum
        full_report, full_checksum = _timed_decisions(
            n_segments, jobs, "scalar", prune=False
        )
        checksums["scalar_unpruned"] = full_checksum
        commit_checksums = {
            b: _commit_pass(n_segments, jobs, b)
            for b in ("scalar", "vector", "tree", "kernel", "adaptive")
        }
        if len(set(checksums.values())) != 1:
            raise AssertionError(
                f"decision divergence at {n_segments} segments: {checksums}"
            )
        if len(set(commit_checksums.values())) != 1:
            raise AssertionError(
                f"commit divergence at {n_segments} segments: {commit_checksums}"
            )
        static = {b: backends[b] for b in ("scalar", "vector", "tree", "kernel")}
        best_p50 = min(r["p50_us"] for r in static.values())
        best_p95 = min(r["p95_us"] for r in static.values())
        for _ in range(2):
            if (
                backends["adaptive"]["p50_us"] <= ADAPTIVE_TOLERANCE * best_p50
                and backends["adaptive"]["p95_us"]
                <= ADAPTIVE_TOLERANCE * best_p95
            ):
                break
            # Microsecond-scale p50s drift by 20%+ run-to-run in a warm
            # process (allocator layout, GC), far above the gate's margin.
            # Re-time adaptive and the best static back-end back-to-back
            # and keep each side's *minimum* — both converge to their true
            # floors, so only a genuine regression keeps failing the gate.
            best_name = min(static, key=lambda b: static[b]["p50_us"])
            retry_adaptive, _ = _timed_decisions(
                n_segments, jobs, "adaptive", prune=True
            )
            retry_static, _ = _timed_decisions(
                n_segments, jobs, best_name, prune=True
            )
            if retry_adaptive["p50_us"] < backends["adaptive"]["p50_us"]:
                backends["adaptive"] = retry_adaptive
            if retry_static["p50_us"] < static[best_name]["p50_us"]:
                backends[best_name] = retry_static
                static[best_name] = retry_static
            best_p50 = min(r["p50_us"] for r in static.values())
            best_p95 = min(r["p95_us"] for r in static.values())
        if backends["adaptive"]["p50_us"] > ADAPTIVE_TOLERANCE * best_p50:
            raise AssertionError(
                f"adaptive p50 {backends['adaptive']['p50_us']}us exceeds "
                f"{ADAPTIVE_TOLERANCE}x best static {best_p50}us at "
                f"{n_segments} segments (best of paired re-measures)"
            )
        speedup_p50 = round(
            backends["scalar"]["p50_us"] / backends["tree"]["p50_us"], 3
        )
        speedup_p95 = round(
            backends["scalar"]["p95_us"] / backends["tree"]["p95_us"], 3
        )
        if n_segments >= 10_000 and speedup_p50 < 5.0:
            raise AssertionError(
                f"tree backend below its 5x headline at {n_segments} segments: "
                f"{speedup_p50}x"
            )
        points.append(
            {
                "segments": n_segments,
                "decisions": n_probes,
                "backends": backends,
                "speedup_tree_vs_scalar_p50": speedup_p50,
                "speedup_tree_vs_scalar_p95": speedup_p95,
                "adaptive_vs_best_static_p50": round(
                    backends["adaptive"]["p50_us"] / best_p50, 3
                ),
                "adaptive_vs_best_static_p95": round(
                    backends["adaptive"]["p95_us"] / best_p95, 3
                ),
                "pruning": {
                    "chains_probed_full": full_report["chains_probed"],
                    "chains_probed_pruned": backends["scalar"]["chains_probed"],
                    "chains_pruned_dominated": backends["scalar"][
                        "chains_pruned_dominated"
                    ],
                    "probe_segments_full": full_report["probe_segments"],
                    "probe_segments_pruned": backends["scalar"]["probe_segments"],
                },
                "checksum": checksums["scalar"],
                "checksums_match": True,
            }
        )
    return {
        "capacity": CAPACITY,
        "workload": "unit-segment backlog + free frontier (see module docs)",
        "points": points,
    }


if __name__ == "__main__":
    import json

    print(json.dumps(run_fragmentation_bench(100, (100, 1_000)), indent=2))
