"""Figure 6(b): throughput benefit of tunability, malleable model.

The paper's finding: "tunability achieves less benefit for malleable tasks
as compared to non-malleable tasks.  However, for system configurations
that are moderately overloaded and for jobs that have moderate laxity, the
tunable task system still yields significant performance improvement."
This bench regenerates panel (b) AND cross-checks it against panel (a).
"""

from benchmarks.conftest import bench_jobs
from repro.experiments.fig6 import render_fig6, run_fig6_panel


def run():
    return (
        run_fig6_panel(malleable=False, n_jobs=bench_jobs()),
        run_fig6_panel(malleable=True, n_jobs=bench_jobs()),
    )


def test_fig6b(benchmark, save_report):
    rigid, malleable = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("fig6b", render_fig6(malleable))

    n = max(
        m.throughput
        for v in malleable.interval_sweep.values
        for m in malleable.interval_sweep.rows[v].values()
    )

    # Less benefit than the rigid model, axis-point by axis-point (sum test
    # to tolerate noise at individual points).
    for axis in ("interval", "laxity"):
        rigid_total = sum(
            r["benefit_over_shape1"] for r in rigid.benefit_rows(axis)
        )
        mall_total = sum(
            r["benefit_over_shape1"] for r in malleable.benefit_rows(axis)
        )
        assert mall_total < rigid_total

    # Still significant at moderate overload / moderate laxity.
    mid_interval = malleable.benefit_rows("interval")[2]
    assert mid_interval["benefit_over_shape1"] > 0.02 * n
    assert mid_interval["benefit_over_shape2"] > 0.02 * n
    mid_laxity = malleable.benefit_rows("laxity")[3]
    assert mid_laxity["benefit_over_shape2"] > 0.02 * n
