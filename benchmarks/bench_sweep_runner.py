"""End-to-end sweep benchmark: serial vs parallel vs warm-cache runner.

Times the same (sweep point × system) grid three ways through
:mod:`repro.runner`:

* ``serial`` — one in-process unit at a time (the pre-runner behavior);
* ``parallel_cold`` — fanned out over worker processes against an empty
  content-addressed cache;
* ``warm_cache`` — a fresh runner re-reading the now-populated cache.

A SHA-256 checksum over the canonical JSON of every unit's metrics (in
grid order) guards correctness: all three executions must be identical,
or the benchmark raises instead of reporting.  Wall-clock ratios are the
machine-dependent part; the committed report also records the host's CPU
count, since parallel speedup is bounded by it (a 1-CPU container can
show ~1× cold-parallel while the same code reaches the expected >3× on a
4-core runner).
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import time

from repro.runner import ExperimentRunner, RunnerConfig, canonical_json
from repro.sim.persistence import metrics_to_dict
from repro.workloads.sweep import SweepConfig, SweepResult, run_sweep

__all__ = ["sweep_checksum", "run_sweep_runner_bench"]


def sweep_checksum(sweep: SweepResult) -> str:
    """Content hash of every unit's metrics, in grid order."""
    payload = [
        metrics_to_dict(sweep.rows[value][system])
        for value in sweep.values
        for system in sweep.systems
    ]
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def run_sweep_runner_bench(
    n_jobs_per_point: int,
    values: tuple[float, ...],
    workers: int = 4,
    seed: int = 1999,
) -> dict:
    """Run the three-way comparison and return the report section."""
    config = SweepConfig(n_jobs=n_jobs_per_point, seed=seed)

    t0 = time.perf_counter()
    serial = run_sweep(
        "interval", values, config, runner=ExperimentRunner(RunnerConfig(jobs=1))
    )
    t_serial = time.perf_counter() - t0

    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as cache_dir:
        cold_runner = ExperimentRunner(
            RunnerConfig(jobs=workers, cache_dir=cache_dir)
        )
        t0 = time.perf_counter()
        cold = run_sweep("interval", values, config, runner=cold_runner)
        t_cold = time.perf_counter() - t0

        warm_runner = ExperimentRunner(
            RunnerConfig(jobs=workers, cache_dir=cache_dir)
        )
        t0 = time.perf_counter()
        warm = run_sweep("interval", values, config, runner=warm_runner)
        t_warm = time.perf_counter() - t0

        cold_snap = cold_runner.perf_snapshot()
        warm_snap = warm_runner.perf_snapshot()

    checksums = {
        "serial": sweep_checksum(serial),
        "parallel_cold": sweep_checksum(cold),
        "warm_cache": sweep_checksum(warm),
    }
    if len(set(checksums.values())) != 1:
        raise AssertionError(f"executions disagree: {checksums}")

    units = len(values) * len(serial.systems)
    cpus = os.cpu_count()
    return {
        "units": units,
        "n_jobs_per_point": n_jobs_per_point,
        "workers": workers,
        "cpus": cpus,
        # Parallel speedup is bounded by the host's core count: on a
        # CPU-bound host (fewer cores than workers, e.g. a 1-CPU CI
        # container) ``speedup_parallel_cold`` measures process-pool
        # overhead, not the runner, and must not be read as a regression.
        "cpu_bound": cpus is None or cpus < workers,
        "serial_seconds": round(t_serial, 6),
        "parallel_cold_seconds": round(t_cold, 6),
        "warm_cache_seconds": round(t_warm, 6),
        "speedup_parallel_cold": round(t_serial / t_cold, 3),
        "speedup_warm_cache": round(t_serial / t_warm, 3),
        "cold_cache_hits": cold_snap.get("cache_hits", 0),
        "cold_cache_misses": cold_snap.get("cache_misses", 0),
        "warm_cache_hits": warm_snap.get("cache_hits", 0),
        "warm_cache_misses": warm_snap.get("cache_misses", 0),
        "units_executed_pool": cold_snap.get("units_executed_pool", 0),
        "units_executed_inline": cold_snap.get("units_executed_inline", 0),
        "pool_chunks_dispatched": cold_snap.get("pool_chunks_dispatched", 0),
        "pool_chunk_failures": cold_snap.get("pool_chunk_failures", 0),
        "unit_p50_us": round(cold_snap.get("unit_p50_us", 0.0), 3),
        "unit_p95_us": round(cold_snap.get("unit_p95_us", 0.0), 3),
        "checksum": checksums["serial"],
        "checksums_match": True,
    }
