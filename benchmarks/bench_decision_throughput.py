"""Admission-decision throughput: serial vs batched, Python vs compiled.

The headline benchmark of the compiled decision-kernel layer
(:mod:`repro.core.kernels`): complete admission decisions per second —
pre-screen, candidate probing, tie-break, commit — on a fragmented
profile, across four execution modes over one identical job stream:

* ``serial-python`` — :meth:`QoSArbitrator.submit` per job, pure-Python
  kernels (``REPRO_KERNEL=python``), the seed-equivalent hot path;
* ``serial-kernel`` — submit per job with the ``"kernel"`` scan back-end
  (compiled ``earliest_fit``/``range_min``/prefix when available);
* ``batched-python`` — one :meth:`QoSArbitrator.admit_batch` call on the
  Python kernels: vectorized area pre-screen + the serial loop;
* ``batched-compiled`` — one ``admit_batch`` call routed through the
  one-call C admission loop (only when the compiled kernel loads).

Every mode's full decision sequence (admit/reject, chosen configuration,
every placement start/width/duration) and final profile are checksummed
and must agree — the speedups are meaningless unless the decisions are
bit-identical.  At full scale, with the compiled kernel available, the
low-fragmentation point must clear **100k decisions/sec** in
``batched-compiled`` mode or the benchmark raises instead of writing
numbers (the ISSUE-7 headline); CI separately gates batched-compiled at
>= 3x serial-python on the quick report.

The workload reuses :mod:`bench_fragmentation`'s backlog profile and
deterministic probe jobs, but *commits* admissions (throughput of real
admission control, not read-only probing): the stream saturates the
frontier, so late jobs exercise the reject path while early ones commit.
"""

from __future__ import annotations

import hashlib
import time

from bench_fragmentation import CAPACITY, _BACKLOG_AVAIL, fragmentation_jobs
from repro.core import kernels
from repro.core.arbitrator import QoSArbitrator

__all__ = ["run_decision_throughput_bench"]

#: Decisions/sec the batched-compiled mode must clear at the
#: low-fragmentation point (full scale, compiled kernel available).
THROUGHPUT_FLOOR = 100_000


def _fragmented_arbitrator(n_segments: int, backend: str) -> QoSArbitrator:
    """An arbitrator whose profile carries the standard backlog pattern."""
    arbitrator = QoSArbitrator(
        CAPACITY, backend=backend, keep_placements=False
    )
    profile = arbitrator.schedule.profile
    for i in range(n_segments):
        profile.reserve(
            float(i), float(i + 1), CAPACITY - _BACKLOG_AVAIL[i % 6]
        )
    return arbitrator


def _digest(decisions) -> str:
    payload = tuple(
        (
            d.admitted,
            d.chain_index,
            tuple(
                (pl.start, pl.processors, pl.duration)
                for pl in d.placement.placements
            )
            if d.placement
            else (),
        )
        for d in decisions
    )
    return hashlib.sha256(repr(payload).encode("utf-8")).hexdigest()


def _run_mode(
    n_segments: int, jobs, *, backend: str, kernel_mode: str, batched: bool
) -> tuple[dict, str]:
    with kernels.use(kernel_mode):
        arbitrator = _fragmented_arbitrator(n_segments, backend)
        t0 = time.perf_counter()
        if batched:
            decisions = arbitrator.admit_batch(jobs)
        else:
            decisions = [arbitrator.submit(job) for job in jobs]
        elapsed = time.perf_counter() - t0
        profile = arbitrator.schedule.profile
        profile.check_invariants()
        checksum = hashlib.sha256(
            (
                _digest(decisions)
                + repr(
                    (
                        tuple(profile._times),  # noqa: SLF001 - identity guard
                        tuple(profile._avail),  # noqa: SLF001
                        arbitrator.utilization(),
                    )
                )
            ).encode("utf-8")
        ).hexdigest()
        report = {
            "seconds": round(elapsed, 6),
            "decisions_per_sec": round(len(jobs) / elapsed, 1)
            if elapsed > 0
            else None,
            "admitted": arbitrator.admitted,
            "kernel_backend": kernels.kernel_backend(),
        }
    return report, checksum


def run_decision_throughput_bench(
    n_jobs: int,
    segment_counts: tuple[int, ...] = (100, 1_000),
    enforce_floor: bool = False,
) -> dict:
    """Throughput comparison across the four execution modes.

    Raises on any decision/profile divergence between modes, and — with
    ``enforce_floor`` and the compiled kernel available — when
    ``batched-compiled`` misses :data:`THROUGHPUT_FLOOR` at the first
    (lowest-fragmentation) segment count.
    """
    try:
        with kernels.use("compiled"):
            pass
        have_compiled = True
    except Exception:
        have_compiled = False

    modes = [
        ("serial-python", dict(backend="auto", kernel_mode="python", batched=False)),
        ("serial-kernel", dict(backend="kernel", kernel_mode="auto", batched=False)),
        ("batched-python", dict(backend="auto", kernel_mode="python", batched=True)),
    ]
    if have_compiled:
        modes.append(
            ("batched-compiled", dict(backend="auto", kernel_mode="compiled", batched=True))
        )

    points = []
    for n_segments in segment_counts:
        jobs = fragmentation_jobs(n_jobs, n_segments)
        reports: dict[str, dict] = {}
        checksums: dict[str, str] = {}
        for name, cfg in modes:
            reports[name], checksums[name] = _run_mode(
                n_segments, jobs, **cfg
            )
        if len(set(checksums.values())) != 1:
            raise AssertionError(
                f"decision divergence at {n_segments} segments: {checksums}"
            )
        point = {
            "segments": n_segments,
            "jobs": n_jobs,
            "modes": reports,
            "checksum": checksums["serial-python"],
            "checksums_match": True,
        }
        serial = reports["serial-python"]["decisions_per_sec"]
        if have_compiled:
            batched = reports["batched-compiled"]["decisions_per_sec"]
            point["speedup_batched_compiled_vs_serial_python"] = round(
                batched / serial, 3
            )
        else:
            point["speedup_batched_python_vs_serial_python"] = round(
                reports["batched-python"]["decisions_per_sec"] / serial, 3
            )
        points.append(point)

    if enforce_floor and have_compiled:
        headline = points[0]["modes"]["batched-compiled"]["decisions_per_sec"]
        if headline < THROUGHPUT_FLOOR:
            raise AssertionError(
                f"batched-compiled throughput {headline}/s below the "
                f"{THROUGHPUT_FLOOR}/s floor at "
                f"{points[0]['segments']} segments"
            )

    return {
        "capacity": CAPACITY,
        "workload": "committed admission stream on the backlog profile",
        "compiled_available": have_compiled,
        "floor_decisions_per_sec": THROUGHPUT_FLOOR,
        "points": points,
    }


if __name__ == "__main__":
    import json
    import sys
    from pathlib import Path

    src = Path(__file__).resolve().parent.parent / "src"
    if str(src) not in sys.path:
        sys.path.insert(0, str(src))
    print(json.dumps(run_decision_throughput_bench(2_000, (100,)), indent=2))
