"""Regime-shift benchmark: the self-tuning back-end vs every static choice.

The fragmentation benchmark (``bench_fragmentation.py``) shows each scan
back-end winning a *static* regime; this benchmark builds the scenario
no static choice can win — one continuous admission stream whose regime
shifts mid-run, the situation ``backend="adaptive"`` exists for:

1. **Growth** — the backlog fragments from empty to ``n_segments`` live
   segments while doomed wide probes arrive throughout.  Mutation-heavy:
   the tree pays lazy consolidation after every mutation burst, the
   scalar walk pays O(S) per probe once S is large; the compiled kernel
   is the regime's winner (committed decision-throughput data).
2. **Fragmentation spike** — a burst of query-only doomed probes against
   the fully fragmented profile.  Query-dominated: the segment tree's
   O(log S) descents win by an order of magnitude over every linear scan
   (committed fragmentation data), and the kernel pays full O(S) walks.
3. **Drain** — arrivals with advancing releases compact the backlog away
   step by step.  Every compaction dirties the tree index from the root,
   so the static tree pays a full O(S) reconsolidation per arrival —
   its worst regime — while the shrinking profile hands the scalar walk
   the win once S is small.
4. **Settled** — a small fresh backlog and a trickle of doomed probes:
   the small-S regime where the scalar walk's minimal constant beats
   every other back-end (committed: scalar 37.9us vs kernel 63.5us p50
   at 100 segments).

Every phase is driven through :meth:`QoSArbitrator.submit` — the real
admission path, so the adaptive controller sees exactly the counter and
latency signals production sees.  Decisions are checksummed across all
back-ends (the decision-identity contract extends to online switching);
in full runs the ``adaptive`` end-to-end wall time must strictly beat
every static back-end's, with one re-measure allowed before failing.
"""

from __future__ import annotations

import hashlib
import time

from repro.core.arbitrator import QoSArbitrator
from repro.core.resources import ProcessorTimeRequest
from repro.model.chain import TaskChain
from repro.model.job import Job
from repro.model.task import TaskSpec

__all__ = ["run_scenario", "run_adaptive_bench", "SCENARIO_BACKENDS"]

CAPACITY = 64
#: Backlog availability cycle — every value far below the probe widths.
_BACKLOG_AVAIL = (1, 3, 6, 2, 5, 4)
#: All back-ends the scenario compares (adaptive last, after its rivals).
SCENARIO_BACKENDS = ("scalar", "vector", "tree", "kernel", "adaptive")


def _doomed_job(job_id: int, release: float, deadline: float, procs: int) -> Job:
    """A probe no back-end can place: its deadline ends inside the backlog."""
    chain = TaskChain(
        (
            TaskSpec(
                "probe",
                ProcessorTimeRequest(procs, 3.0),
                deadline=deadline,
            ),
        ),
        label="doomed",
    )
    return Job((chain,), release=release, job_id=job_id)


def _drain_job(job_id: int, release: float) -> Job:
    """A thin arrival that places immediately at its release."""
    chain = TaskChain(
        (
            TaskSpec(
                "drain",
                ProcessorTimeRequest(1, 1.0),
                deadline=release + 64.0,
            ),
        ),
        label="drain",
    )
    return Job((chain,), release=release, job_id=job_id)


def _decision_key(decision) -> tuple | None:
    if not decision.admitted or decision.placement is None:
        return None
    cp = decision.placement
    return (
        cp.chain_index,
        tuple((pl.start, pl.end, pl.processors) for pl in cp.placements),
    )


def run_scenario(
    backend: str,
    *,
    n_segments: int = 6_000,
    growth_every: int = 8,
    spike_probes: int = 600,
    drain_steps: int = 200,
    settled_probes: int = 300,
    settled_segments: int = 120,
) -> dict:
    """One end-to-end regime-shift run under one back-end.

    Returns per-phase and total wall seconds, the decision checksum, and
    (for ``"adaptive"``) the controller's telemetry.
    """
    arbitrator = QoSArbitrator(
        CAPACITY, backend=backend, keep_placements=False
    )
    profile = arbitrator.schedule.profile
    decisions: list[tuple | None] = []
    phases: dict[str, float] = {}
    job_id = 0

    # Phase 1 — growth: the backlog fragments under the probes' feet.
    t0 = time.perf_counter()
    for i in range(n_segments):
        profile.reserve(float(i), float(i + 1), CAPACITY - _BACKLOG_AVAIL[i % 6])
        if (i + 1) % growth_every == 0 and i + 1 >= 16:
            built = float(i + 1)
            decisions.append(
                _decision_key(
                    arbitrator.submit(
                        _doomed_job(job_id, 0.0, built * 0.75, 16 + 8 * (job_id % 3))
                    )
                )
            )
            job_id += 1
    phases["growth_s"] = time.perf_counter() - t0

    # Phase 2 — fragmentation spike: query-only probes, fully built backlog.
    t0 = time.perf_counter()
    horizon = float(n_segments)
    for _ in range(spike_probes):
        decisions.append(
            _decision_key(
                arbitrator.submit(
                    _doomed_job(job_id, 0.0, horizon * 0.75, 16 + 8 * (job_id % 3))
                )
            )
        )
        job_id += 1
    phases["spike_s"] = time.perf_counter() - t0

    # Phase 3 — drain: advancing releases compact the backlog away (the
    # arbitrator compacts to each arrival's release before probing).
    t0 = time.perf_counter()
    step = n_segments / drain_steps
    for k in range(1, drain_steps + 1):
        decisions.append(
            _decision_key(arbitrator.submit(_drain_job(job_id, k * step)))
        )
        job_id += 1
    phases["drain_s"] = time.perf_counter() - t0

    # Phase 4 — settled: a small fresh backlog, a trickle of probes.
    t0 = time.perf_counter()
    base = float(n_segments) + 64.0
    for i in range(settled_segments):
        profile.reserve(
            base + i, base + i + 1.0, CAPACITY - _BACKLOG_AVAIL[i % 6]
        )
    for _ in range(settled_probes):
        decisions.append(
            _decision_key(
                arbitrator.submit(
                    _doomed_job(
                        job_id,
                        base,
                        base + settled_segments * 0.75,
                        16 + 8 * (job_id % 3),
                    )
                )
            )
        )
        job_id += 1
    phases["settled_s"] = time.perf_counter() - t0

    payload = (decisions, arbitrator.utilization())
    out = {
        "backend": backend,
        "seconds": round(sum(phases.values()), 6),
        "phases": {k: round(v, 6) for k, v in phases.items()},
        "decisions": len(decisions),
        "checksum": hashlib.sha256(repr(payload).encode("utf-8")).hexdigest(),
    }
    autotune = profile.autotune
    if autotune is not None:
        out["autotune"] = dict(autotune.snapshot())
        out["autotune"]["switch_log"] = [
            list(entry) for entry in autotune.switch_log
        ]
    return out


def run_adaptive_bench(
    *,
    n_segments: int = 6_000,
    spike_probes: int = 600,
    drain_steps: int = 200,
    settled_probes: int = 300,
    strict: bool = True,
) -> dict:
    """Run the regime-shift scenario under every back-end and compare.

    Raises on any decision-checksum divergence.  With ``strict`` (full
    runs), the adaptive end-to-end time must beat every static back-end;
    one adaptive re-measure is allowed first (microbenchmark noise).
    Quick runs set ``strict=False``: identity and telemetry are still
    checked, but the ordering — which needs the full-size phases for its
    margins — is only reported.
    """
    kwargs = dict(
        n_segments=n_segments,
        spike_probes=spike_probes,
        drain_steps=drain_steps,
        settled_probes=settled_probes,
    )
    runs = {b: run_scenario(b, **kwargs) for b in SCENARIO_BACKENDS}
    checksums = {b: r["checksum"] for b, r in runs.items()}
    if len(set(checksums.values())) != 1:
        raise AssertionError(
            f"regime-shift decision divergence across backends: {checksums}"
        )
    autotune = runs["adaptive"]["autotune"]
    if autotune["autotune_switches"] < 2:
        raise AssertionError(
            "adaptive controller failed to track the regime shifts: "
            f"only {autotune['autotune_switches']} switch(es); "
            f"log={autotune['switch_log']}"
        )
    best_static = min(
        (b for b in SCENARIO_BACKENDS if b != "adaptive"),
        key=lambda b: runs[b]["seconds"],
    )
    if strict and runs["adaptive"]["seconds"] >= runs[best_static]["seconds"]:
        retry = run_scenario("adaptive", **kwargs)
        if retry["seconds"] < runs["adaptive"]["seconds"]:
            runs["adaptive"] = retry
        if runs["adaptive"]["seconds"] >= runs[best_static]["seconds"]:
            raise AssertionError(
                "adaptive did not beat every static backend end-to-end: "
                f"adaptive {runs['adaptive']['seconds']}s vs best static "
                f"{best_static} {runs[best_static]['seconds']}s"
            )
    return {
        "capacity": CAPACITY,
        "workload": "growth -> fragmentation spike -> drain -> settled "
        "(see module docs)",
        "n_segments": n_segments,
        "checksums_match": True,
        "best_static": best_static,
        "adaptive_vs_best_static": round(
            runs["adaptive"]["seconds"] / runs[best_static]["seconds"], 4
        ),
        "adaptive_beats_all_static": bool(
            runs["adaptive"]["seconds"]
            < min(
                runs[b]["seconds"] for b in SCENARIO_BACKENDS if b != "adaptive"
            )
        ),
        "strict": strict,
        "runs": {b: runs[b] for b in SCENARIO_BACKENDS},
    }


if __name__ == "__main__":
    import json

    print(
        json.dumps(
            run_adaptive_bench(
                n_segments=1_500,
                spike_probes=150,
                drain_steps=60,
                settled_probes=80,
                strict=False,
            ),
            indent=2,
        )
    )
