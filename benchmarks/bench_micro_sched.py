"""Scheduler micro-benchmarks (not in the paper; engineering baselines).

Times the hot-path primitives on a realistically fragmented profile:
reserve/release, earliest-fit search, maximal-hole enumeration, and
whole-job admission.
"""

import pytest

from repro.core.first_fit import earliest_fit
from repro.core.greedy import GreedyScheduler
from repro.core.holes import maximal_holes
from repro.core.profile import AvailabilityProfile
from repro.core.schedule import Schedule
from repro.sim.rng import RandomStreams
from repro.workloads.synthetic import SyntheticParams


def fragmented_profile(capacity=16, n_reservations=200, seed=3):
    rng = RandomStreams(seed).python("frag")
    profile = AvailabilityProfile(capacity)
    for _ in range(n_reservations):
        t0 = rng.uniform(0, 1000)
        dur = rng.uniform(1, 30)
        avail = profile.min_available(t0, t0 + dur)
        if avail > 0:
            profile.reserve(t0, t0 + dur, rng.randint(1, avail))
    return profile


@pytest.fixture(scope="module")
def profile():
    return fragmented_profile()


def test_reserve_release(benchmark, profile):
    p = profile.copy()
    start = earliest_fit(p, 1, 30.0, 0.0)
    assert start is not None

    def op():
        p.reserve(start, start + 30.0, 1)
        p.release(start, start + 30.0, 1)

    benchmark(op)


def test_earliest_fit(benchmark, profile):
    result = benchmark(lambda: earliest_fit(profile, 8, 25.0, 0.0))
    assert result is not None


def test_maximal_holes(benchmark, profile):
    holes = benchmark(lambda: maximal_holes(profile, horizon=1100.0))
    assert holes


def test_admit_tunable_job(benchmark):
    params = SyntheticParams(x=16, t=25.0, alpha=0.5, laxity=0.5)

    def admit():
        schedule = Schedule(16)
        scheduler = GreedyScheduler(schedule)
        placed = 0
        for i in range(20):
            if scheduler.schedule_job(params.tunable_job(release=30.0 * i)):
                placed += 1
        return placed

    assert benchmark(admit) > 0
