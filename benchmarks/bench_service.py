"""Service-path admission throughput vs the direct ``admit_batch`` floor.

The fault-tolerant front-end (:mod:`repro.service`) wraps the arbitrator
in an asyncio pipeline: bounded ingress queue, request coalescing into
decision batches, and a write-ahead log fsync'd *before* any client is
acked.  All of that machinery must stay cheap relative to the decisions
it protects — this benchmark drives one identical job stream through

* ``direct`` — :meth:`QoSArbitrator.admit_batch` in ``max_batch``-sized
  chunks on a bare arbitrator: the floor the service cannot beat, and
* ``service`` — the full :class:`~repro.service.AdmissionService` path
  (enqueue -> coalesce -> WAL append + fsync -> decide -> WAL decisions
  -> ack), with shedding/degrade/timeouts disabled so every request is
  decided,

and checksums both decision sequences (admit/reject, chosen chain, every
placement) — the overhead number is meaningless unless the service
decided bit-identically to the bare arbitrator.  With ``enforce_floor``
the service path must stay within :data:`OVERHEAD_CEILING` x of the
direct ``admit_batch`` floor recorded in ``BENCH_sched.json``
(:data:`~bench_decision_throughput.THROUGHPUT_FLOOR`, 100k
decisions/sec) — i.e. sustain at least 50k durable decisions/sec; the
same-machine direct measurement is reported alongside (and used instead
whenever it is *below* the recorded floor, so a slow host is judged
against itself, not against better hardware).  A no-fsync variant shows
how much of the remaining gap is durability.
"""

from __future__ import annotations

import asyncio
import hashlib
import shutil
import tempfile
import time
from pathlib import Path

from bench_decision_throughput import THROUGHPUT_FLOOR

from repro.service.service import (
    AdmissionService,
    ServiceConfig,
    make_arbitrator,
)
from repro.service.wal import decision_to_tuple
from repro.sim.arrivals import PoissonArrivals
from repro.sim.rng import RandomStreams
from repro.workloads.synthetic import SyntheticParams

__all__ = ["run_service_bench", "OVERHEAD_CEILING"]

#: Max allowed service-path slowdown vs the recorded direct floor: the
#: fsync'd service must sustain ``min(direct, THROUGHPUT_FLOOR) /
#: OVERHEAD_CEILING`` decisions per second.
OVERHEAD_CEILING = 2.0

CAPACITY = 64

#: Coalescing window.  Also the chunk size for the direct floor — the
#: compiled batch kernel's sweet spot is around 1k jobs per call, and
#: both paths must be chunked identically for the ratio to mean anything.
MAX_BATCH = 1024


def _workload(n_jobs: int, seed: int):
    """The repo's headline stream: Figure-4 tunable jobs, Poisson arrivals."""
    params = SyntheticParams(x=16, t=25.0, alpha=0.5, laxity=0.5)
    arrivals = PoissonArrivals(4.0, RandomStreams(seed))
    return CAPACITY, [params.tunable_job(t) for t in arrivals.times(n_jobs)]


def _config(capacity: int, n_jobs: int, *, fsync: bool) -> ServiceConfig:
    """Pure-throughput configuration: nothing sheds, degrades or expires.

    This is the *batched* throughput benchmark, so coalescing (the
    service's amortization mechanism for WAL framing and fsync) is
    allowed to do its job up to :data:`MAX_BATCH` per decision batch;
    the direct floor is chunked identically.
    """
    return ServiceConfig(
        capacity=capacity,
        queue_limit=n_jobs + 16,
        max_batch=min(n_jobs, MAX_BATCH),
        shed_thresholds=(9.0,),
        degrade_occupancy=9.0,
        checkpoint_every=0,
        fsync=fsync,
    )


def _digest(decision_tuples) -> str:
    return hashlib.sha256(
        repr(tuple(decision_tuples)).encode("utf-8")
    ).hexdigest()


#: Repetitions per mode; the best run is reported (wall-clock jitter on a
#: shared host easily exceeds the 2x margin under test).
REPEATS = 3


def _run_direct(config: ServiceConfig, jobs) -> tuple[dict, str]:
    best = None
    for _ in range(REPEATS):
        arbitrator = make_arbitrator(config)
        batch = config.max_batch
        decisions = []
        t0 = time.perf_counter()
        for i in range(0, len(jobs), batch):
            decisions.extend(arbitrator.admit_batch(jobs[i : i + batch]))
        elapsed = time.perf_counter() - t0
        if best is None or elapsed < best[0]:
            best = (elapsed, decisions)
    elapsed, decisions = best
    report = {
        "seconds": round(elapsed, 6),
        "decisions_per_sec": round(len(jobs) / elapsed, 1)
        if elapsed > 0
        else None,
        "admitted": sum(1 for d in decisions if d.admitted),
    }
    return report, _digest(decision_to_tuple(d) for d in decisions)


async def _drive(config: ServiceConfig, wal_dir: Path, jobs):
    service = AdmissionService(config, wal_dir)
    service.start()
    try:
        t0 = time.perf_counter()
        futures = [
            await service.enqueue(job, qos=0, request_id=f"bench-{i}")
            for i, job in enumerate(jobs)
        ]
        # Collect in submission order.  Awaiting the futures directly
        # (rather than gather()) means resolved futures are consumed
        # without a per-future callback trip through the event loop.
        decisions = [await f for f in futures]
        elapsed = time.perf_counter() - t0
    finally:
        await service.stop()
    return decisions, elapsed, service.stats()


def _run_service(
    config: ServiceConfig, jobs, label: str
) -> tuple[dict, str]:
    best = None
    for _ in range(REPEATS):
        wal_dir = Path(tempfile.mkdtemp(prefix=f"repro-bench-{label}-"))
        try:
            decisions, elapsed, stats = asyncio.run(
                _drive(config, wal_dir, jobs)
            )
        finally:
            shutil.rmtree(wal_dir, ignore_errors=True)
        if best is None or elapsed < best[0]:
            best = (elapsed, decisions, stats)
    elapsed, decisions, stats = best
    if any(not d.admitted and d.decision is None for d in decisions):
        raise AssertionError(
            "service shed or timed out a request in the throughput "
            "configuration; the comparison is not like-for-like"
        )
    report = {
        "seconds": round(elapsed, 6),
        "decisions_per_sec": round(len(jobs) / elapsed, 1)
        if elapsed > 0
        else None,
        "admitted": sum(1 for d in decisions if d.admitted),
        "batches": stats["batches"],
        "wal_appends": stats["wal_appends"],
        "wal_syncs": stats["wal_syncs"],
    }
    return report, _digest(decision_to_tuple(d.decision) for d in decisions)


def run_service_bench(
    n_jobs: int, seed: int = 2024, enforce_floor: bool = False
) -> dict:
    """Compare the durable service path against the bare batched floor.

    Raises on any decision divergence between the three modes, and — with
    ``enforce_floor`` — when the fsync'd service path falls below
    ``min(direct, THROUGHPUT_FLOOR) / OVERHEAD_CEILING`` decisions/sec
    (within 2x of the direct ``admit_batch`` floor recorded in
    ``BENCH_sched.json``).
    """
    capacity, jobs = _workload(n_jobs, seed)
    config = _config(capacity, n_jobs, fsync=True)

    reports: dict[str, dict] = {}
    checksums: dict[str, str] = {}
    reports["direct"], checksums["direct"] = _run_direct(config, jobs)
    reports["service"], checksums["service"] = _run_service(
        config, jobs, "fsync"
    )
    reports["service-nosync"], checksums["service-nosync"] = _run_service(
        _config(capacity, n_jobs, fsync=False), jobs, "nosync"
    )

    if len(set(checksums.values())) != 1:
        raise AssertionError(
            f"service decisions diverged from admit_batch: {checksums}"
        )

    # The gate: the recorded floor (100k decisions/sec) is what
    # BENCH_sched.json certifies for the direct path, and the service
    # must stay within OVERHEAD_CEILING of it.  On a host where even the
    # direct path cannot reach the recorded floor, the host's own direct
    # measurement is the reference instead.
    reference_dps = min(
        reports["direct"]["decisions_per_sec"], float(THROUGHPUT_FLOOR)
    )
    required_dps = reference_dps / OVERHEAD_CEILING
    service_dps = reports["service"]["decisions_per_sec"]
    if enforce_floor and service_dps < required_dps:
        raise AssertionError(
            f"durable service path sustained {service_dps:.0f} "
            f"decisions/sec; within-{OVERHEAD_CEILING}x-of-floor "
            f"requires >= {required_dps:.0f} "
            f"(floor min(direct={reports['direct']['decisions_per_sec']:.0f}, "
            f"recorded={THROUGHPUT_FLOOR}))"
        )

    return {
        "jobs": n_jobs,
        "capacity": capacity,
        "max_batch": config.max_batch,
        "workload": "Figure-4 tunable jobs, Poisson arrivals, QoS quiet",
        "checksum": checksums["direct"],
        "checksums_match": True,
        "overhead_ceiling": OVERHEAD_CEILING,
        "floor_decisions_per_sec": THROUGHPUT_FLOOR,
        "required_decisions_per_sec": round(required_dps, 1),
        "floor_satisfied": bool(service_dps >= required_dps),
        # Fixed costs (event-loop setup, one fsync over few jobs) dwarf
        # the per-decision cost on tiny streams, so the floor is only
        # meaningful — and only enforced — at full scale.
        "floor_enforced": bool(enforce_floor),
        "overhead_service_vs_direct": round(
            reports["service"]["seconds"] / reports["direct"]["seconds"], 3
        ),
        "overhead_nosync_vs_direct": round(
            reports["service-nosync"]["seconds"]
            / reports["direct"]["seconds"],
            3,
        ),
        "modes": reports,
    }


if __name__ == "__main__":
    import json
    import sys

    src = Path(__file__).resolve().parent.parent / "src"
    if str(src) not in sys.path:
        sys.path.insert(0, str(src))
    print(json.dumps(run_service_bench(1_000), indent=2))
