"""Junction-detection pipeline benches: per-step and end-to-end cost.

These are the numbers a deployment would profile to build the QoS agent's
resource table (Section 3.2 assumes them measured offline on training
images).
"""

import pytest

from repro.apps.junction.detect import detect_junctions, harris_response
from repro.apps.junction.image import synthetic_image
from repro.apps.junction.regions import mark_regions
from repro.apps.junction.sampling import sample_image


@pytest.fixture(scope="module")
def image():
    return synthetic_image(size=256, n_junctions=10, seed=31)


def test_step1_sampling(benchmark, image):
    result = benchmark(lambda: sample_image(image.pixels, 16))
    assert result.sampled_count > 0


def test_step2_regions(benchmark, image):
    points = sample_image(image.pixels, 16).points

    regions = benchmark(
        lambda: mark_regions(points, 5.0, image.pixels.shape)
    )
    assert regions


def test_step3_harris(benchmark, image):
    response = benchmark(lambda: harris_response(image.pixels, window=5))
    assert response.shape == image.pixels.shape


@pytest.mark.parametrize(
    "granularity,distance", [(16, 5.0), (64, 20.0)], ids=["fine", "coarse"]
)
def test_full_pipeline(benchmark, image, granularity, distance):
    result = benchmark(
        lambda: detect_junctions(image.pixels, granularity, distance)
    )
    assert result.work.total > 0
