"""Figure 5(c): sensitivity to the number of processors.

Asserts: big benefit on the small (P=x) machine, shrinking as processors
grow; the rigid shapes converge to full admission only on large machines.

Known deviation (recorded in EXPERIMENTS.md): at P around 2x our greedy's
earliest-finish myopia can leave the tunable system ~1% *below* shape 1;
the assertions use a matching tolerance.
"""

from benchmarks.conftest import bench_jobs
from repro.experiments.fig5 import render_fig5
from repro.workloads import SweepConfig, presets
from repro.workloads.sweep import run_sweep

PROCESSORS = (16, 24, 32, 48, 64)


def run():
    cfg = SweepConfig(n_jobs=bench_jobs(), seed=presets.DEFAULT_SEED)
    return run_sweep("processors", PROCESSORS, cfg)


def test_fig5c(benchmark, save_report):
    sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("fig5c", render_fig5(sweep, "c"))

    tun = sweep.series("tunable", "throughput")
    s1 = sweep.series("shape1", "throughput")
    s2 = sweep.series("shape2", "throughput")
    n = max(tun)

    # Tunable within tolerance of the best shape everywhere, strictly better
    # on the small machine.
    assert tun[0] > max(s1[0], s2[0]) + 0.05 * n
    for t, a, b in zip(tun, s1, s2):
        assert t >= max(a, b) - 0.02 * n

    # Benefit shrinks with machine size.
    gap_small = tun[0] - max(s1[0], s2[0])
    gap_large = tun[-1] - max(s1[-1], s2[-1])
    assert gap_small > gap_large

    # Everyone admits (almost) everything on the largest machine.
    assert tun[-1] >= 0.99 * n
    assert s1[-1] >= 0.99 * n
