"""Generate ``BENCH_sched.json``: the scheduler hot-path benchmark report.

Two sections:

* ``micro`` — the :mod:`bench_profile_ops` before/after pairs: the greedy
  inner loop (``earliest_fit`` + ``reserve``) and the tie-break's
  ``free_area`` window probes, each run against the legacy (seed) profile
  implementation and the optimized one on identical request streams.  The
  checksum fields double as a correctness guard: before/after must agree.
* ``arrival`` — a figure-level arrival simulation (Figure-4 tunable jobs,
  Poisson arrivals, the Section 5.2 arbitrator) reporting throughput,
  utilization and the per-submit wall-clock decision latency percentiles
  collected by :mod:`repro.perf`.
* ``sweep`` — the end-to-end experiment-runner benchmark
  (:mod:`bench_sweep_runner`): one full interval sweep executed serially,
  in parallel over worker processes with a cold content-addressed result
  cache, and again warm — with checksums proving all three executions
  produced identical metrics.
* ``fragmentation`` — decision latency vs live-profile segment count for
  the three ``earliest_fit`` scan back-ends (:mod:`bench_fragmentation`),
  with checksum guards proving every back-end and prune mode makes
  bit-identical admission decisions, and a hard >=5x tree-vs-scalar
  requirement at 10k segments.
* ``resilience`` — the fault-aware simulation loop
  (:mod:`repro.resilience`): a zero-event run checked bit-identical
  against the baseline simulator (the subsystem's no-overhead-when-idle
  guard), then a perturbed run (capacity faults x overruns x bursts)
  timed under full per-event verification.
* ``decision_throughput`` — complete admission decisions per second
  (:mod:`bench_decision_throughput`): one identical committed job stream
  run serial vs batched on the pure-Python vs compiled decision kernels
  (:mod:`repro.core.kernels`), decisions and final profile checksummed
  across all modes; at full scale the batched-compiled mode must clear
  the 100k decisions/sec floor on the low-fragmentation point.
* ``service`` — the fault-tolerant admission front-end
  (:mod:`repro.service`, via :mod:`bench_service`): one identical job
  stream decided directly by ``admit_batch`` and through the full durable
  service path (enqueue -> coalesce -> WAL append -> decide -> fsync ->
  ack), decisions checksummed across modes; at full scale the fsync'd
  service must stay within 2x of the recorded 100k/s direct floor (>=
  50k durable decisions/sec).
* ``adaptive`` — the self-tuning back-end's regime-shift scenario
  (:mod:`bench_adaptive`): one admission stream moving through backlog
  growth -> fragmentation spike -> drain -> settled, run end-to-end under
  every static scan back-end and under ``backend="adaptive"``, decisions
  checksummed across all of them; at full scale the adaptive run must
  strictly beat every static back-end's wall time.
* ``perf_overhead`` — the always-on recorder's per-decision cost
  (slotted counter bumps + one latency sample) micro-timed and compared
  against the arrival section's decision p50; at full scale the overhead
  must stay <= 2% of the decision p50, the budget that keeps the
  counters cheap enough to drive the adaptive controller permanently.
* ``reconfig`` — mid-execution malleability
  (:mod:`repro.resilience.reconfig`): an armed grow/shrink engine with a
  prohibitive reconfiguration cost on a zero-event trace must reproduce
  the baseline scheduling metrics bit for bit with zero resizes — every
  probe's transaction rollback has to be a bit-exact inverse — then the
  committed reconfig-experiment regime is timed with resizing on,
  reporting the grow/shrink ledger against the no-resize arm.

Usage::

    python benchmarks/run_bench.py            # full scale, writes BENCH_sched.json
    python benchmarks/run_bench.py --quick    # CI smoke scale, ~seconds
    python benchmarks/run_bench.py --output /tmp/bench.json

The committed ``BENCH_sched.json`` at the repo root is regenerated with the
default (full) scale.  Numbers are wall-clock and therefore machine-
dependent; the *speedup ratios* are the stable, reviewable quantity.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from dataclasses import replace
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # standalone invocation without PYTHONPATH=src
    sys.path.insert(0, str(_SRC))

from bench_profile_ops import (  # noqa: E402 - after sys.path bootstrap
    LegacyAvailabilityProfile,
    run_area_query_bench,
    run_reserve_fit_bench,
)
from bench_decision_throughput import (  # noqa: E402
    run_decision_throughput_bench,
)
from bench_adaptive import run_adaptive_bench  # noqa: E402
from bench_fragmentation import run_fragmentation_bench  # noqa: E402
from bench_service import run_service_bench  # noqa: E402
from bench_sweep_runner import run_sweep_runner_bench  # noqa: E402
from repro.core.arbitrator import QoSArbitrator  # noqa: E402
from repro.core.profile import AvailabilityProfile  # noqa: E402
from repro.resilience.events import (  # noqa: E402
    FaultModel,
    PerturbationTrace,
    generate_trace,
)
from repro.resilience.reconfig import (  # noqa: E402
    ReconfigCostModel,
    ReconfigEngine,
    ResizePolicy,
)
from repro.resilience.simulator import simulate_resilient  # noqa: E402
from repro.sim.arrivals import PoissonArrivals  # noqa: E402
from repro.sim.rng import RandomStreams  # noqa: E402
from repro.sim.simulator import simulate_arrivals  # noqa: E402
from repro.workloads.synthetic import SyntheticParams  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_sched.json"


def _pair(run, **kwargs) -> dict:
    """Run one micro-benchmark for both implementations; attach the ratio."""
    before = run(LegacyAvailabilityProfile, **kwargs)
    after = run(AvailabilityProfile, **kwargs)
    if before["checksum"] != after["checksum"]:
        raise AssertionError(
            f"implementations disagree: {before['checksum']} != {after['checksum']}"
        )
    return {
        "before": before,
        "after": after,
        "speedup": round(after["ops_per_sec"] / before["ops_per_sec"], 3),
    }


def run_arrival_bench(
    n_jobs: int,
    capacity: int = 64,
    mean_interval: float = 4.0,
    seed: int = 2024,
) -> dict:
    """Figure-level arrival run with decision-latency instrumentation.

    Poisson arrivals of the Figure-4 tunable job against the rigid
    Section 5.2 arbitrator; returns the experiment's headline metrics plus
    the :meth:`QoSArbitrator.perf_snapshot` latency/counter fields.
    """
    params = SyntheticParams(x=16, t=25.0, alpha=0.5, laxity=0.5)
    arbitrator = QoSArbitrator(capacity)
    process = PoissonArrivals(mean_interval, RandomStreams(seed))
    t_start = time.perf_counter()
    metrics = simulate_arrivals(
        arbitrator,
        lambda i, release: params.tunable_job(release),
        process,
        n_jobs,
    )
    elapsed = time.perf_counter() - t_start
    perf = metrics.perf
    return {
        "jobs": n_jobs,
        "capacity": capacity,
        "mean_interval": mean_interval,
        "seconds": round(elapsed, 6),
        "jobs_per_sec": round(n_jobs / elapsed, 1) if elapsed > 0 else None,
        "throughput": metrics.throughput,
        "admit_rate": round(metrics.admit_rate, 4),
        "utilization": round(metrics.utilization, 4),
        "decision_p50_us": round(perf.get("decision_p50_us", 0.0), 3),
        "decision_p95_us": round(perf.get("decision_p95_us", 0.0), 3),
        "chains_probed": perf.get("chains_probed", 0),
        "chains_area_rejected": perf.get("chains_area_rejected", 0),
        "profile_shift_ops": perf.get("profile_shift_ops", 0),
        "profile_probes": perf.get("profile_probes", 0),
        "profile_segments": perf.get("profile_segments", 0),
    }


def run_resilience_bench(
    n_jobs: int,
    capacity: int = 32,
    mean_interval: float = 30.0,
    seed: int = 2024,
) -> dict:
    """Fault-aware loop benchmark with the zero-event equivalence guard.

    First proves the no-overhead-when-idle identity — an empty
    ``PerturbationTrace`` through :func:`simulate_resilient` must reproduce
    the fault-free ``simulate_arrivals`` metrics bit for bit, with an empty
    resilience block — then times a perturbed run (capacity faults, latent
    overruns, arrival bursts) with full per-event verification on and
    reports its headline resilience metrics.
    """
    params = SyntheticParams(x=16, t=25.0, alpha=0.25, laxity=0.5)

    def factory(i, release):
        return params.tunable_job(release)

    arrivals = list(
        PoissonArrivals(mean_interval, RandomStreams(seed)).times(n_jobs)
    )
    baseline = simulate_arrivals(
        QoSArbitrator(capacity),
        factory,
        PoissonArrivals(mean_interval, RandomStreams(seed)),
        n_jobs,
    )
    empty = simulate_resilient(
        QoSArbitrator(capacity), factory, arrivals, PerturbationTrace()
    )
    if empty != baseline or empty.resilience != {}:
        raise AssertionError(
            "zero-event resilient run diverged from the baseline simulator"
        )

    model = FaultModel(
        fault_rate=3e-4,
        fault_severity=0.375,
        mean_repair=300.0,
        overrun_prob=0.10,
        burst_rate=5e-5,
        burst_size=4,
    )
    trace = generate_trace(
        model,
        RandomStreams(seed),
        horizon=arrivals[-1] + params.d2,
        base_capacity=capacity,
        n_arrivals=n_jobs,
    )
    t_start = time.perf_counter()
    metrics = simulate_resilient(
        QoSArbitrator(capacity, keep_placements=True),
        factory,
        arrivals,
        trace,
        verify=True,
    )
    elapsed = time.perf_counter() - t_start
    r = metrics.resilience
    return {
        "jobs": n_jobs,
        "capacity": capacity,
        "mean_interval": mean_interval,
        "zero_event_identical": True,
        "seconds": round(elapsed, 6),
        "jobs_per_sec": round(n_jobs / elapsed, 1) if elapsed > 0 else None,
        "events": r["events"],
        "capacity_events": r["capacity_events"],
        "overrun_events": r["overrun_events"],
        "burst_arrivals": r["burst_arrivals"],
        "affected": r["affected"],
        "survival_rate": round(r["survival_rate"], 4),
        "path_switches": r["path_switches"],
        "wasted_work": round(r["wasted_work"], 3),
        "utilization": round(metrics.utilization, 4),
    }


def run_reconfig_bench(
    n_jobs: int,
    capacity: int = 32,
    mean_interval: float = 35.0,
    seed: int = 2024,
) -> dict:
    """Mid-execution malleability benchmark with its bit-identity guard.

    Guard: a ``GROW_SHRINK`` engine whose cost model makes every resize
    unprofitable (prohibitive checkpoint term), run on a zero-event trace,
    must commit **zero** resizes and reproduce the plain simulator's
    scheduling metrics bit for bit — failed probes run the full
    rollback/restore transaction, so this proves the undo path is a
    bit-exact inverse.  Then the perturbed committed regime (severity 0.6,
    repair 100 — the reconfig experiment's fault model) is timed with
    zero-cost grow/shrink enabled, reporting the resize ledger and the
    survival x quality benefit against the no-resize arm on the identical
    trace.
    """
    params = SyntheticParams(x=16, t=25.0, alpha=0.5, laxity=0.5)

    def factory(i, release):
        return params.tunable_job(release)

    def engine(cost: float) -> ReconfigEngine:
        return ReconfigEngine(ResizePolicy.GROW_SHRINK, ReconfigCostModel(cost))

    arrivals = list(
        PoissonArrivals(mean_interval, RandomStreams(seed)).times(n_jobs)
    )
    baseline = simulate_arrivals(
        QoSArbitrator(capacity, malleable=True),
        factory,
        PoissonArrivals(mean_interval, RandomStreams(seed)),
        n_jobs,
    )
    guard_engine = engine(1e9)
    guarded = simulate_resilient(
        QoSArbitrator(capacity, malleable=True, keep_placements=True),
        factory,
        arrivals,
        PerturbationTrace(),
        reconfig=guard_engine,
    )
    ledger = guard_engine.ledger()
    if ledger["grows"] or ledger["shrinks"] or guard_engine.records:
        raise AssertionError(
            f"prohibitive-cost engine committed resizes: {ledger}"
        )
    if replace(guarded, resilience={}) != baseline:
        raise AssertionError(
            "armed-but-idle reconfig run diverged from the baseline simulator"
        )

    model = FaultModel(
        fault_rate=1e-3,
        fault_severity=0.6,
        mean_repair=100.0,
        overrun_prob=0.10,
        burst_rate=5e-5,
        burst_size=4,
    )
    trace = generate_trace(
        model,
        RandomStreams(seed),
        horizon=arrivals[-1] + params.d2,
        base_capacity=capacity,
        n_arrivals=n_jobs,
    )
    off = simulate_resilient(
        QoSArbitrator(capacity, malleable=True, keep_placements=True),
        factory,
        arrivals,
        trace,
        verify=True,
    )
    on_engine = engine(0.0)
    t_start = time.perf_counter()
    on = simulate_resilient(
        QoSArbitrator(capacity, malleable=True, keep_placements=True),
        factory,
        arrivals,
        trace,
        verify=True,
        reconfig=on_engine,
    )
    elapsed = time.perf_counter() - t_start
    r = on.resilience

    def benefit(m):
        return m.resilience.get("survival_rate", 1.0) * m.achieved_quality

    return {
        "jobs": n_jobs,
        "capacity": capacity,
        "mean_interval": mean_interval,
        "idle_engine_identical": True,
        "idle_probe_attempts": ledger["grow_attempts"] + ledger["shrink_attempts"],
        "seconds": round(elapsed, 6),
        "jobs_per_sec": round(n_jobs / elapsed, 1) if elapsed > 0 else None,
        "grows": r["grows"],
        "shrinks": r["shrinks"],
        "shrink_admits": r["shrink_admits"],
        "shrink_rescues": r["shrink_rescues"],
        "resizes": r["resizes"],
        "resize_cost": round(r["resize_cost"], 3),
        "resize_wasted": round(r["resize_wasted"], 3),
        "survival_rate": round(r["survival_rate"], 4),
        "benefit_resize_on": round(benefit(on), 3),
        "benefit_resize_off": round(benefit(off), 3),
    }


#: Recorder overhead budget: the always-on counters may cost at most this
#: fraction of the decision p50 (the satellite guard for keeping them
#: permanently enabled as the adaptive controller's signal source).
PERF_OVERHEAD_BUDGET = 0.02


def run_perf_overhead_bench(
    decision_p50_us: float, n: int = 200_000, enforce: bool = True
) -> dict:
    """Micro-time the recorder work one admission decision performs.

    Per decision the hot path pays one :meth:`PerfRecorder.note_decision`
    (float add + list append) plus a handful of slotted counter bumps
    from the schedulers and the schedule.  This times that bundle and
    reports it as a fraction of the measured decision p50; with
    ``enforce`` the fraction must clear :data:`PERF_OVERHEAD_BUDGET`
    (one re-measure allowed — it is a nanosecond-scale wall-clock
    sample).
    """
    from repro.perf import PerfRecorder

    def measure() -> float:
        rec = PerfRecorder()
        t0 = time.perf_counter()
        for _ in range(n):
            # One decision's worth of recorder traffic: the latency
            # sample plus representative hot-counter bumps (probe loop,
            # prune accounting, the commit).
            rec.chains_probed += 1
            rec.chains_quick_rejected += 1
            rec.chains_pruned_dominated += 1
            rec.chains_area_rejected += 1
            rec.commits += 1
            rec.note_decision(1e-6)
        return (time.perf_counter() - t0) / n * 1e6

    per_decision_us = measure()
    if enforce and per_decision_us > PERF_OVERHEAD_BUDGET * decision_p50_us:
        per_decision_us = min(per_decision_us, measure())
    overhead = (
        per_decision_us / decision_p50_us if decision_p50_us > 0 else 0.0
    )
    if enforce and overhead > PERF_OVERHEAD_BUDGET:
        raise AssertionError(
            f"perf recorder overhead {per_decision_us:.3f}us/decision is "
            f"{overhead:.2%} of the decision p50 {decision_p50_us}us "
            f"(budget {PERF_OVERHEAD_BUDGET:.0%})"
        )
    return {
        "iterations": n,
        "recorder_us_per_decision": round(per_decision_us, 4),
        "decision_p50_us": decision_p50_us,
        "overhead_fraction": round(overhead, 5),
        "budget_fraction": PERF_OVERHEAD_BUDGET,
        "enforced": enforce,
    }


def generate(quick: bool = False) -> dict:
    """Run every section and return the report dict."""
    if quick:
        micro_n, area_n, area_resv, arrival_n = 1_500, 1_500, 600, 200
        sweep_n, sweep_values, sweep_workers = (
            150,
            (15.0, 30.0, 45.0, 60.0),
            2,
        )
        resilience_n = 300
        reconfig_n = 300
        frag_decisions, frag_counts = 60, (100, 1_000)
        throughput_jobs, throughput_counts, throughput_floor = (
            2_000, (100,), False,
        )
        service_jobs, service_floor = 400, False
        adaptive_kwargs = dict(
            n_segments=1_500,
            spike_probes=150,
            drain_steps=60,
            settled_probes=80,
            strict=False,
        )
        perf_overhead_enforced = False
    else:
        micro_n, area_n, area_resv, arrival_n = 10_000, 10_000, 2_000, 2_000
        sweep_n, sweep_values, sweep_workers = (
            2_000,
            tuple(float(v) for v in range(10, 86, 5)),
            4,
        )
        resilience_n = 2_000
        reconfig_n = 2_000
        frag_decisions, frag_counts = 150, (100, 1_000, 10_000)
        throughput_jobs, throughput_counts, throughput_floor = (
            20_000, (100, 1_000), True,
        )
        service_jobs, service_floor = 4_000, True
        adaptive_kwargs = dict(strict=True)
        perf_overhead_enforced = True
    arrival = run_arrival_bench(arrival_n)
    return {
        "generated_by": "benchmarks/run_bench.py",
        "mode": "quick" if quick else "full",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
        "micro": {
            "reserve_fit": _pair(run_reserve_fit_bench, n_placements=micro_n),
            "area_query": _pair(
                run_area_query_bench, n_queries=area_n, n_reservations=area_resv
            ),
        },
        "arrival": arrival,
        "sweep": run_sweep_runner_bench(
            sweep_n, sweep_values, workers=sweep_workers
        ),
        "fragmentation": run_fragmentation_bench(frag_decisions, frag_counts),
        "adaptive": run_adaptive_bench(**adaptive_kwargs),
        "perf_overhead": run_perf_overhead_bench(
            arrival["decision_p50_us"], enforce=perf_overhead_enforced
        ),
        "decision_throughput": run_decision_throughput_bench(
            throughput_jobs, throughput_counts, enforce_floor=throughput_floor
        ),
        "service": run_service_bench(
            service_jobs, enforce_floor=service_floor
        ),
        "resilience": run_resilience_bench(resilience_n),
        "reconfig": run_reconfig_bench(reconfig_n),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smoke scale (seconds, for CI); committed reports use full scale",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help=f"where to write the JSON report (default {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)
    report = generate(quick=args.quick)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    micro = report["micro"]
    print(f"wrote {args.output}")
    print(f"  reserve_fit speedup: {micro['reserve_fit']['speedup']}x")
    print(f"  area_query speedup:  {micro['area_query']['speedup']}x")
    print(
        f"  decision latency: p50={report['arrival']['decision_p50_us']}us "
        f"p95={report['arrival']['decision_p95_us']}us"
    )
    sweep = report["sweep"]
    bound = " [cpu-bound host]" if sweep.get("cpu_bound") else ""
    print(
        f"  sweep ({sweep['units']} units, {sweep['workers']} workers, "
        f"{sweep['cpus']} cpus): serial={sweep['serial_seconds']}s "
        f"parallel-cold={sweep['parallel_cold_seconds']}s "
        f"({sweep['speedup_parallel_cold']}x{bound}) "
        f"warm-cache={sweep['warm_cache_seconds']}s "
        f"({sweep['speedup_warm_cache']}x), checksums match"
    )
    for point in report["fragmentation"]["points"]:
        print(
            f"  fragmentation @ {point['segments']} segments: "
            f"scalar p50={point['backends']['scalar']['p50_us']}us "
            f"tree p50={point['backends']['tree']['p50_us']}us "
            f"({point['speedup_tree_vs_scalar_p50']}x), decisions identical"
        )
    adaptive = report["adaptive"]
    verdict = (
        "beats all static"
        if adaptive["adaptive_beats_all_static"]
        else "does NOT beat all static"
    )
    print(
        f"  adaptive regime-shift @ {adaptive['n_segments']} segments: "
        f"adaptive={adaptive['runs']['adaptive']['seconds']}s vs best "
        f"static {adaptive['best_static']}="
        f"{adaptive['runs'][adaptive['best_static']]['seconds']}s "
        f"({adaptive['adaptive_vs_best_static']}x, {verdict}), "
        f"switches={adaptive['runs']['adaptive']['autotune']['autotune_switches']}, "
        f"decisions identical"
    )
    overhead = report["perf_overhead"]
    print(
        f"  perf recorder overhead: "
        f"{overhead['recorder_us_per_decision']}us/decision = "
        f"{overhead['overhead_fraction']:.2%} of decision p50 "
        f"(budget {overhead['budget_fraction']:.0%})"
    )
    throughput = report["decision_throughput"]
    for point in throughput["points"]:
        modes = point["modes"]
        headline = (
            modes["batched-compiled"]["decisions_per_sec"]
            if "batched-compiled" in modes
            else modes["batched-python"]["decisions_per_sec"]
        )
        tag = (
            "batched-compiled"
            if "batched-compiled" in modes
            else "batched-python [no compiler]"
        )
        speed_key = next(k for k in point if k.startswith("speedup_"))
        print(
            f"  decision throughput @ {point['segments']} segments: "
            f"serial-python={modes['serial-python']['decisions_per_sec']}/s "
            f"{tag}={headline}/s ({point[speed_key]}x), decisions identical"
        )
    service = report["service"]
    if service["floor_enforced"]:
        floor_note = (
            f"required >= {service['required_decisions_per_sec']}/s, "
            f"{'ok' if service['floor_satisfied'] else 'MISSED'}"
        )
    else:
        floor_note = "floor not enforced at this scale"
    print(
        f"  service ({service['jobs']} jobs, batch {service['max_batch']}): "
        f"direct={service['modes']['direct']['decisions_per_sec']}/s "
        f"durable={service['modes']['service']['decisions_per_sec']}/s "
        f"({floor_note}), "
        f"nosync={service['modes']['service-nosync']['decisions_per_sec']}/s, "
        f"decisions identical"
    )
    resilience = report["resilience"]
    print(
        f"  resilience ({resilience['jobs']} jobs, "
        f"{resilience['events']} events): zero-event identical, "
        f"perturbed run {resilience['seconds']}s "
        f"({resilience['jobs_per_sec']} jobs/s), "
        f"survival={resilience['survival_rate']} "
        f"switches={resilience['path_switches']}"
    )
    reconfig = report["reconfig"]
    print(
        f"  reconfig ({reconfig['jobs']} jobs): idle engine identical "
        f"({reconfig['idle_probe_attempts']} probes rolled back), "
        f"perturbed run {reconfig['seconds']}s — "
        f"grows={reconfig['grows']} shrinks={reconfig['shrinks']} "
        f"benefit on/off={reconfig['benefit_resize_on']}/"
        f"{reconfig['benefit_resize_off']}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
