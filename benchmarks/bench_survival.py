"""Extension bench: job survival across a capacity drop.

Regenerates the survival table and asserts the tunability claim: at
moderate drops the tunable system keeps the largest fraction of affected
jobs, and it is the only system whose jobs survive by switching execution
paths.
"""

from benchmarks.conftest import bench_jobs
from repro.experiments.survival import render_survival, run_survival

CAPACITIES = (24, 20, 16, 12)


def run():
    return run_survival(new_capacities=CAPACITIES, n_jobs=min(bench_jobs(), 800))


def test_survival(benchmark, save_report):
    points = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("survival", render_survival(points))

    by = {(p.system, p.new_capacity): p for p in points}

    # Moderate drops: tunable >= both rigid shapes, strictly better than at
    # least one, and its survivors include genuine path switches.
    for capacity in (20, 16):
        tun = by[("tunable", capacity)]
        s1 = by[("shape1", capacity)]
        s2 = by[("shape2", capacity)]
        assert tun.survival_rate >= s1.survival_rate - 1e-9
        assert tun.survival_rate >= s2.survival_rate - 1e-9
        assert tun.survival_rate > min(s1.survival_rate, s2.survival_rate)
        assert tun.path_switches > 0

    # A drop below the tall task's width strands every system (rigid tasks
    # cannot shrink; Section 5.4's malleable model is the remedy).
    for system in ("tunable", "shape1", "shape2"):
        assert by[(system, 12)].survival_rate < 0.1
