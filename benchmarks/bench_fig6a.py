"""Figure 6(a): throughput benefit of tunability, non-malleable model.

Regenerates the benefit-over-shape1 and benefit-over-shape2 series along
both axes (arrival interval and laxity) for the rigid task model.
"""

from benchmarks.conftest import bench_jobs
from repro.experiments.fig6 import render_fig6, run_fig6_panel


def run():
    return run_fig6_panel(malleable=False, n_jobs=bench_jobs())


def test_fig6a(benchmark, save_report):
    panel = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("fig6a", render_fig6(panel))

    for axis in ("interval", "laxity"):
        rows = panel.benefit_rows(axis)
        n = max(
            max(m.throughput for m in panel.interval_sweep.rows[v].values())
            for v in panel.interval_sweep.values
        )
        # Benefits are non-negative (within noise) along both axes...
        for row in rows:
            assert row["benefit_over_shape1"] >= -0.02 * n
            assert row["benefit_over_shape2"] >= -0.02 * n
        # ...and substantial somewhere in the middle of the axis.
        interior = rows[1:-1]
        assert any(
            r["benefit_over_shape1"] > 0.05 * n for r in interior
        )
