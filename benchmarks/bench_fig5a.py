"""Figure 5(a): utilization & throughput vs mean arrival interval.

Regenerates both series for the tunable system and the two rigid shapes
and asserts the paper's qualitative claims: tunable >= both shapes across
the axis, saturation at heavy overload, peak absolute benefit in the middle
of the axis.
"""

from benchmarks.conftest import bench_jobs
from repro.experiments.fig5 import render_fig5
from repro.workloads import SweepConfig, presets
from repro.workloads.sweep import run_sweep

INTERVALS = (10.0, 25.0, 40.0, 55.0, 70.0, 85.0)


def run():
    cfg = SweepConfig(n_jobs=bench_jobs(), seed=presets.DEFAULT_SEED)
    return run_sweep("interval", INTERVALS, cfg)


def test_fig5a(benchmark, save_report):
    sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("fig5a", render_fig5(sweep, "a"))

    tun_u = sweep.series("tunable", "utilization")
    tun_t = sweep.series("tunable", "throughput")
    for shape in ("shape1", "shape2"):
        for metric, tun_series in (("utilization", tun_u), ("throughput", tun_t)):
            base = sweep.series(shape, metric)
            slack = 0.02 * max(max(tun_series), 1)
            assert all(
                t >= b - slack for t, b in zip(tun_series, base)
            ), f"tunable fell below {shape} on {metric}"

    # Saturation at the heavy-overload end of the axis.
    assert tun_u[0] > 0.95

    # The largest absolute throughput benefit is interior, not at the ends.
    gaps = [
        t - max(s1, s2)
        for t, s1, s2 in zip(
            tun_t,
            sweep.series("shape1", "throughput"),
            sweep.series("shape2", "throughput"),
        )
    ]
    assert max(gaps[1:-1]) >= max(gaps[0], gaps[-1])
