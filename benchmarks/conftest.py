"""Shared helpers for the benchmark harness.

Each ``bench_*`` module regenerates one table/figure of the paper (see
DESIGN.md's per-experiment index): it runs the experiment inside
pytest-benchmark (timing the regeneration), prints the same rows/series the
paper reports, asserts the qualitative shape, and archives the rendered
report under ``results/``.

Scale: benchmarks default to ``REPRO_BENCH_JOBS`` arrivals per point
(default 600) so the whole suite completes in minutes; set
``REPRO_FULL_SCALE=1`` for the paper's 10,000 (expect ~1-2 hours for the
full set).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def bench_jobs(default: int = 600) -> int:
    """Arrivals per sweep point for benchmark runs."""
    if os.environ.get("REPRO_FULL_SCALE", "") not in ("", "0", "false", "False"):
        return 10_000
    return int(os.environ.get("REPRO_BENCH_JOBS", default))


@pytest.fixture
def save_report():
    """Persist a rendered report under results/<name>.txt and echo it."""

    def _save(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text)
        print(f"\n[{name}] report saved to {path}")
        print(text)

    return _save
