"""Extension bench: quality degradation under load (tiered workload).

Regenerates the degradation table and asserts its shape: achieved-quality
ratio falls smoothly as load rises, with the premium tier's share of
admissions shrinking first.
"""

from benchmarks.conftest import bench_jobs
from repro.experiments.quality import render_quality, run_quality_degradation

INTERVALS = (15.0, 30.0, 45.0, 60.0, 85.0)


def run():
    return run_quality_degradation(intervals=INTERVALS, n_jobs=bench_jobs())


def test_quality_degradation(benchmark, save_report):
    points = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("quality", render_quality(points))

    for objective in ("max-quality", "earliest-finish"):
        series = [p for p in points if p.objective == objective]
        ratios = [p.quality_ratio for p in series]
        # Graceful degradation: monotone in offered headroom.
        assert ratios == sorted(ratios)
        # Light load approaches full quality; heavy load sheds >30% of it.
        assert ratios[-1] > 0.85
        assert ratios[0] < 0.7 * ratios[-1]
        # Premium share of admissions grows with headroom.
        shares = [
            p.tier_usage["premium"] / p.admitted for p in series if p.admitted
        ]
        assert shares[-1] > shares[0]
