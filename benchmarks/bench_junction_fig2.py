"""Figure 2: junction-detection configurations and their resource trade-off.

Profiles the fine and coarse configurations over a set of synthetic images
and asserts the quantitative content of the figure: coarse sampling cuts
step-1 work by about the granularity ratio, inflates step-3 work, and holds
broadly comparable output quality.
"""

from benchmarks.conftest import bench_jobs
from repro.experiments.junction_fig2 import render_fig2, run_fig2


def run():
    return run_fig2(n_images=5, size=128, n_junctions=6)


def test_fig2(benchmark, save_report):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("fig2", render_fig2(rows))

    fine, coarse = rows
    granularity_ratio = coarse.granularity / fine.granularity  # 4x

    # Step 1 cost drops by the sampling ratio.
    assert fine.step1_work / coarse.step1_work > granularity_ratio * 0.9

    # Step 3 cost grows substantially (the compensation).
    assert coarse.step3_work > 1.5 * fine.step3_work

    # Whole-job resource areas differ: the trade-off moves work across
    # steps, it does not keep areas identical (our profiles are honest).
    assert coarse.total_area != fine.total_area

    # Comparable-but-lower quality on the coarse path.
    assert coarse.f1 > 0.4 * fine.f1
    assert fine.f1 > 0.4
