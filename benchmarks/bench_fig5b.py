"""Figure 5(b): sensitivity to laxity.

Asserts: benefit grows with laxity; shape 2 catches up above ~0.6 laxity;
shape 1 remains handicapped even with very loose deadlines.
"""

from benchmarks.conftest import bench_jobs
from repro.experiments.fig5 import render_fig5
from repro.workloads import SweepConfig, presets
from repro.workloads.sweep import run_sweep

LAXITIES = (0.05, 0.2, 0.35, 0.5, 0.65, 0.8, 0.95)


def run():
    cfg = SweepConfig(n_jobs=bench_jobs(), seed=presets.DEFAULT_SEED)
    return run_sweep("laxity", LAXITIES, cfg)


def test_fig5b(benchmark, save_report):
    sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("fig5b", render_fig5(sweep, "b"))

    tun = sweep.series("tunable", "throughput")
    s1 = sweep.series("shape1", "throughput")
    s2 = sweep.series("shape2", "throughput")
    n = max(tun)

    # Tunable never loses.
    for base in (s1, s2):
        assert all(t >= b - 0.02 * n for t, b in zip(tun, base))

    # Benefit over shape1 grows with laxity (compare axis ends).
    assert (tun[-1] - s1[-1]) > (tun[0] - s1[0])

    # Shape 2 catches up at the highest laxities...
    assert tun[-1] - s2[-1] <= 0.03 * n
    # ...while shape 1 stays handicapped even with loose deadlines.
    assert tun[-1] - s1[-1] > 0.10 * n
