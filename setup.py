"""Legacy setup shim.

The environment's setuptools/pip combination lacks the ``wheel`` package, so
PEP 517 editable installs fail; this shim enables
``pip install -e . --no-build-isolation`` via the legacy ``setup.py develop``
path.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
